/**
 * @file
 * Fixed-size thread pool used to parallelize the SR compiler and the
 * experiment sweeps.
 *
 * Design constraints, in order of importance:
 *
 *  1. *Determinism*: the pool only ever executes independent work
 *     items; every parallel site in srsim assigns each item its own
 *     output slot (and, where randomness is involved, its own RNG
 *     stream derived from a base seed and the item index) and
 *     reduces the slots in a fixed order afterwards. Results are
 *     therefore byte-identical for any pool size, including 1.
 *  2. *No deadlock under nesting*: parallelFor() callers participate
 *     in their own loop. A caller never blocks on work that only a
 *     busy worker could run -- in the worst case it executes every
 *     index itself -- so nested parallelFor() (e.g. a load sweep
 *     whose points each run parallel AssignPaths restarts) cannot
 *     starve.
 *  3. *Serial fallback*: a pool of size 1 spawns no threads at all;
 *     submit() and parallelFor() run inline on the caller, in index
 *     order.
 *
 * The global pool's size comes from the SRSIM_THREADS environment
 * variable (default: the hardware concurrency; 1 disables threading
 * entirely).
 */

#ifndef SRSIM_UTIL_THREAD_POOL_HH_
#define SRSIM_UTIL_THREAD_POOL_HH_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace srsim {

/** Fixed-size thread pool with a deterministic parallel-for. */
class ThreadPool
{
  public:
    /**
     * @param threads total concurrency (caller included); a pool of
     * size n spawns n - 1 worker threads. Clamped to >= 1.
     */
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (worker threads + the calling thread). */
    std::size_t size() const { return size_; }

    /**
     * Run f asynchronously and return its future. With a pool of
     * size 1 the task runs inline before submit() returns.
     */
    template <typename F>
    auto
    submit(F &&f) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(f));
        std::future<R> fut = task->get_future();
        if (workers_.empty()) {
            (*task)();
            return fut;
        }
        enqueue([task]() { (*task)(); });
        return fut;
    }

    /**
     * Execute body(0), ..., body(n - 1), each exactly once.
     *
     * The calling thread participates; worker threads join as they
     * become free. Blocks until every index has completed. If any
     * body invocation throws, the remaining indices still run and
     * the exception thrown by the *lowest* index is rethrown here
     * (lowest-index selection keeps the propagated error independent
     * of thread count).
     */
    void
    parallelFor(std::size_t n,
                const std::function<void(std::size_t)> &body);

    /**
     * The process-wide pool, lazily created with the size given by
     * the SRSIM_THREADS environment variable (default: hardware
     * concurrency).
     */
    static ThreadPool &global();

    /**
     * Replace the global pool with one of the given size (used by
     * tests and benchmarks to pin the thread count at runtime).
     * Must not be called while the global pool is executing work.
     */
    static void setGlobalSize(std::size_t threads);

    /** Pool size requested by SRSIM_THREADS (>= 1). */
    static std::size_t configuredSize();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    std::size_t size_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace srsim

#endif // SRSIM_UTIL_THREAD_POOL_HH_
