#include "util/thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/logging.hh"

namespace srsim {

ThreadPool::ThreadPool(std::size_t threads)
    : size_(threads < 1 ? 1 : threads)
{
    workers_.reserve(size_ - 1);
    for (std::size_t i = 0; i + 1 < size_; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk,
                     [this]() { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

namespace {

/**
 * Shared state of one parallelFor(). Held by shared_ptr: runner
 * tasks that only get scheduled after the loop has already finished
 * (every index claimed by other threads) find no work and must not
 * touch a dead frame.
 */
struct ForLoopState
{
    explicit ForLoopState(std::size_t n_,
                          const std::function<void(std::size_t)> &b)
        : n(n_), body(b)
    {}

    const std::size_t n;
    const std::function<void(std::size_t)> &body;
    std::atomic<std::size_t> next{0};

    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t done = 0;
    bool finished = false; // set once done == n; body is dead after
    std::exception_ptr error;
    std::size_t errorIndex = SIZE_MAX;

    /** Claim and run indices until none remain. */
    void
    run()
    {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            std::exception_ptr eptr;
            try {
                body(i);
            } catch (...) {
                eptr = std::current_exception();
            }
            std::lock_guard<std::mutex> lk(mu);
            if (eptr && i < errorIndex) {
                errorIndex = i;
                error = eptr;
            }
            if (++done == n) {
                finished = true;
                done_cv.notify_all();
            }
        }
    }
};

} // namespace

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (workers_.empty() || n == 1) {
        // Serial fallback: index order on the calling thread. The
        // exception contract matches the parallel path (lowest
        // throwing index wins; later indices still run).
        std::exception_ptr error;
        for (std::size_t i = 0; i < n; ++i) {
            try {
                body(i);
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
        return;
    }

    auto state = std::make_shared<ForLoopState>(n, body);
    const std::size_t helpers =
        std::min(workers_.size(), n - 1);
    for (std::size_t h = 0; h < helpers; ++h) {
        // Safe after the loop completes: a late runner sees
        // next >= n, never reads `body`, and drops its reference.
        enqueue([state]() { state->run(); });
    }
    state->run(); // the caller participates

    std::unique_lock<std::mutex> lk(state->mu);
    state->done_cv.wait(lk, [&]() { return state->finished; });
    if (state->error)
        std::rethrow_exception(state->error);
}

namespace {

std::unique_ptr<ThreadPool> &
globalHolder()
{
    static std::unique_ptr<ThreadPool> pool =
        std::make_unique<ThreadPool>(ThreadPool::configuredSize());
    return pool;
}

} // namespace

ThreadPool &
ThreadPool::global()
{
    return *globalHolder();
}

void
ThreadPool::setGlobalSize(std::size_t threads)
{
    globalHolder() = std::make_unique<ThreadPool>(threads);
}

std::size_t
ThreadPool::configuredSize()
{
    const char *env = std::getenv("SRSIM_THREADS");
    if (env && *env) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v >= 1)
            return static_cast<std::size_t>(v);
        warn("ignoring invalid SRSIM_THREADS='", env, "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace srsim
