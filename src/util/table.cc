#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace srsim {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SRSIM_ASSERT(!headers_.empty(), "Table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    SRSIM_ASSERT(cells.size() == headers_.size(),
                 "row has ", cells.size(), " cells, expected ",
                 headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "") << std::left
               << std::setw(static_cast<int>(width[c])) << row[c];
        }
        os << "\n";
    };

    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << row[c];
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace srsim
