/**
 * @file
 * Fixed-width table printer used by the benchmark harness to emit the
 * rows/series of each reproduced figure, plus CSV export.
 */

#ifndef SRSIM_UTIL_TABLE_HH_
#define SRSIM_UTIL_TABLE_HH_

#include <ostream>
#include <string>
#include <vector>

namespace srsim {

/**
 * Accumulates rows of string cells and prints them with aligned
 * columns (human form) or comma separation (CSV form).
 */
class Table
{
  public:
    /** @param headers column headers, fixes the column count */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header column count. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 4);

    /** Print with aligned columns and a separator rule. */
    void print(std::ostream &os) const;

    /** Print comma-separated values including the header row. */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace srsim

#endif // SRSIM_UTIL_TABLE_HH_
