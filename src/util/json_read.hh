/**
 * @file
 * Minimal recursive-descent JSON parser.
 *
 * Two consumers: the daemon's write-ahead-log reader (each WAL
 * record is one JSON object per line) and the test suite's
 * structural validation of srsim's exporters. Supports the full
 * JSON grammar the exporters emit (objects, arrays, strings with
 * escapes, numbers, booleans, null); it is not a general-purpose
 * library — errors throw std::runtime_error with a byte offset so
 * callers can decide whether a malformed record is fatal (tests) or
 * a torn tail to discard (WAL recovery).
 */

#ifndef SRSIM_UTIL_JSON_READ_HH_
#define SRSIM_UTIL_JSON_READ_HH_

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace srsim {
namespace jsonmini {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value
{
    enum class Kind { Object, Array, String, Number, Bool, Null };
    Kind kind = Kind::Null;

    std::map<std::string, ValuePtr> object;
    std::vector<ValuePtr> array;
    std::string string;
    double number = 0.0;
    bool boolean = false;

    bool has(const std::string &k) const { return object.count(k); }

    const Value &
    at(const std::string &k) const
    {
        auto it = object.find(k);
        if (it == object.end())
            throw std::runtime_error("missing key '" + k + "'");
        return *it->second;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    ValuePtr
    parse()
    {
        ValuePtr v = parseValue();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing data");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("unexpected end");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 s_[pos_] + "'");
        ++pos_;
    }

    ValuePtr
    parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n')
            return parseNull();
        return parseNumber();
    }

    ValuePtr
    parseObject()
    {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            ValuePtr key = parseString();
            expect(':');
            v->object[key->string] = parseValue();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    ValuePtr
    parseArray()
    {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v->array.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    ValuePtr
    parseString()
    {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::String;
        expect('"');
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c != '\\') {
                v->string += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("dangling escape");
            const char e = s_[pos_++];
            switch (e) {
              case '"': v->string += '"'; break;
              case '\\': v->string += '\\'; break;
              case '/': v->string += '/'; break;
              case 'b': v->string += '\b'; break;
              case 'f': v->string += '\f'; break;
              case 'n': v->string += '\n'; break;
              case 'r': v->string += '\r'; break;
              case 't': v->string += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > s_.size())
                      fail("short \\u escape");
                  // Validation only: keep the raw escape text.
                  v->string += "\\u" + s_.substr(pos_, 4);
                  pos_ += 4;
                  break;
              }
              default: fail("bad escape");
            }
        }
        if (pos_ >= s_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return v;
    }

    ValuePtr
    parseNumber()
    {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected number");
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::Number;
        char *end = nullptr;
        const std::string tok = s_.substr(start, pos_ - start);
        v->number = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0')
            fail("malformed number '" + tok + "'");
        return v;
    }

    ValuePtr
    parseBool()
    {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::Bool;
        if (s_.compare(pos_, 4, "true") == 0) {
            v->boolean = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            v->boolean = false;
            pos_ += 5;
        } else {
            fail("expected boolean");
        }
        return v;
    }

    ValuePtr
    parseNull()
    {
        if (s_.compare(pos_, 4, "null") != 0)
            fail("expected null");
        pos_ += 4;
        return std::make_shared<Value>();
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

inline ValuePtr
parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace jsonmini
} // namespace srsim

#endif // SRSIM_UTIL_JSON_READ_HH_
