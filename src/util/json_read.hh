/**
 * @file
 * Minimal recursive-descent JSON parser.
 *
 * Two consumers: the daemon's write-ahead-log reader (each WAL
 * record is one JSON object per line) and the test suite's
 * structural validation of srsim's exporters. Supports the full
 * JSON grammar the exporters emit (objects, arrays, strings with
 * escapes, numbers, booleans, null); it is not a general-purpose
 * library — errors throw std::runtime_error with a byte offset so
 * callers can decide whether a malformed record is fatal (tests) or
 * a torn tail to discard (WAL recovery).
 */

#ifndef SRSIM_UTIL_JSON_READ_HH_
#define SRSIM_UTIL_JSON_READ_HH_

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace srsim {
namespace jsonmini {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value
{
    enum class Kind { Object, Array, String, Number, Bool, Null };
    Kind kind = Kind::Null;

    std::map<std::string, ValuePtr> object;
    std::vector<ValuePtr> array;
    std::string string;
    double number = 0.0;
    bool boolean = false;

    bool has(const std::string &k) const { return object.count(k); }

    const Value &
    at(const std::string &k) const
    {
        auto it = object.find(k);
        if (it == object.end())
            throw std::runtime_error("missing key '" + k + "'");
        return *it->second;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    ValuePtr
    parse()
    {
        ValuePtr v = parseValue();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing data");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("unexpected end");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" +
                 s_[pos_] + "'");
        ++pos_;
    }

    ValuePtr
    parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n')
            return parseNull();
        return parseNumber();
    }

    ValuePtr
    parseObject()
    {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            ValuePtr key = parseString();
            expect(':');
            v->object[key->string] = parseValue();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    ValuePtr
    parseArray()
    {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v->array.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    ValuePtr
    parseString()
    {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::String;
        expect('"');
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c != '\\') {
                v->string += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("dangling escape");
            const char e = s_[pos_++];
            switch (e) {
              case '"': v->string += '"'; break;
              case '\\': v->string += '\\'; break;
              case '/': v->string += '/'; break;
              case 'b': v->string += '\b'; break;
              case 'f': v->string += '\f'; break;
              case 'n': v->string += '\n'; break;
              case 'r': v->string += '\r'; break;
              case 't': v->string += '\t'; break;
              case 'u': {
                  // Decode to UTF-8 so escaped strings round-trip
                  // byte-exact with JsonWriter (which emits \u00xx
                  // for control characters).
                  unsigned cp = parseHex4();
                  if (cp >= 0xDC00 && cp <= 0xDFFF)
                      fail("unpaired low surrogate");
                  if (cp >= 0xD800 && cp <= 0xDBFF) {
                      if (pos_ + 2 > s_.size() ||
                          s_[pos_] != '\\' || s_[pos_ + 1] != 'u')
                          fail("unpaired high surrogate");
                      pos_ += 2;
                      const unsigned lo = parseHex4();
                      if (lo < 0xDC00 || lo > 0xDFFF)
                          fail("unpaired high surrogate");
                      cp = 0x10000 + ((cp - 0xD800) << 10) +
                           (lo - 0xDC00);
                  }
                  appendUtf8(v->string, cp);
                  break;
              }
              default: fail("bad escape");
            }
        }
        if (pos_ >= s_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return v;
    }

    /** Consume 4 hex digits of a \\uXXXX escape. */
    unsigned
    parseHex4()
    {
        if (pos_ + 4 > s_.size())
            fail("short \\u escape");
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9')
                cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                cp |= static_cast<unsigned>(h - 'A' + 10);
            else
                fail("bad \\u escape");
        }
        return cp;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    ValuePtr
    parseNumber()
    {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected number");
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::Number;
        char *end = nullptr;
        const std::string tok = s_.substr(start, pos_ - start);
        v->number = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0')
            fail("malformed number '" + tok + "'");
        return v;
    }

    ValuePtr
    parseBool()
    {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::Bool;
        if (s_.compare(pos_, 4, "true") == 0) {
            v->boolean = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            v->boolean = false;
            pos_ += 5;
        } else {
            fail("expected boolean");
        }
        return v;
    }

    ValuePtr
    parseNull()
    {
        if (s_.compare(pos_, 4, "null") != 0)
            fail("expected null");
        pos_ += 4;
        return std::make_shared<Value>();
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

inline ValuePtr
parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace jsonmini
} // namespace srsim

#endif // SRSIM_UTIL_JSON_READ_HH_
