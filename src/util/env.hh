/**
 * @file
 * The one sanctioned doorway to the process environment.
 *
 * Ambient `std::getenv` calls scattered through the engine made
 * configuration untestable and per-session overrides impossible; the
 * context refactor confines environment access to the entry layer
 * (CLI / engine-context construction), which reads through these
 * helpers exactly once and carries the values in explicit config.
 * tools/check_globals.sh enforces the boundary.
 */

#ifndef SRSIM_UTIL_ENV_HH_
#define SRSIM_UTIL_ENV_HH_

#include <cstdlib>
#include <optional>
#include <string>

namespace srsim {

/** @return the variable's value, or nullopt when unset or empty. */
inline std::optional<std::string>
envString(const char *name)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return std::nullopt;
    return std::string(v);
}

/**
 * @return the variable parsed as a positive integer; nullopt when
 * unset, empty, malformed, or < 1 (callers warn as appropriate).
 */
inline std::optional<std::size_t>
envPositive(const char *name)
{
    const std::optional<std::string> s = envString(name);
    if (!s)
        return std::nullopt;
    char *end = nullptr;
    const long v = std::strtol(s->c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 1)
        return std::nullopt;
    return static_cast<std::size_t>(v);
}

} // namespace srsim

#endif // SRSIM_UTIL_ENV_HH_
