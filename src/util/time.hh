/**
 * @file
 * Simulation time representation and tolerant comparisons.
 *
 * All times in srsim are double microseconds. Schedules are built from
 * sums and differences of task/message durations, so values stay well
 * below 1e9 and a fixed absolute epsilon is adequate. Every interval in
 * the scheduler is half-open: [start, end).
 */

#ifndef SRSIM_UTIL_TIME_HH_
#define SRSIM_UTIL_TIME_HH_

#include <algorithm>
#include <cmath>
#include <ostream>

namespace srsim {

/** Simulation time in microseconds. */
using Time = double;

/** Absolute tolerance for time comparisons. */
constexpr Time kTimeEps = 1e-6;

/** @return true if a and b are equal within tolerance. */
inline bool
timeEq(Time a, Time b)
{
    return std::abs(a - b) <= kTimeEps;
}

/** @return true if a <= b within tolerance. */
inline bool
timeLe(Time a, Time b)
{
    return a <= b + kTimeEps;
}

/** @return true if a < b by more than the tolerance. */
inline bool
timeLt(Time a, Time b)
{
    return a < b - kTimeEps;
}

/** @return true if a >= b within tolerance. */
inline bool
timeGe(Time a, Time b)
{
    return timeLe(b, a);
}

/** @return true if a > b by more than the tolerance. */
inline bool
timeGt(Time a, Time b)
{
    return timeLt(b, a);
}

/** @return a clamped into [lo, hi]. */
inline Time
timeClamp(Time a, Time lo, Time hi)
{
    return std::max(lo, std::min(hi, a));
}

/**
 * A half-open time window [start, end). Windows with end <= start are
 * empty.
 */
struct TimeWindow
{
    Time start = 0.0;
    Time end = 0.0;

    /** @return window duration (zero for empty windows). */
    Time length() const { return std::max(0.0, end - start); }

    /** @return true if the window contains no usable time. */
    bool empty() const { return !timeLt(start, end); }

    /** @return true if instant t lies in [start, end). */
    bool
    contains(Time t) const
    {
        return timeGe(t, start) && timeLt(t, end);
    }

    /** @return true if [s, e) lies fully inside this window. */
    bool
    covers(Time s, Time e) const
    {
        return timeLe(start, s) && timeLe(e, end);
    }

    /** @return true if the two windows share usable time. */
    bool
    overlaps(const TimeWindow &other) const
    {
        return timeLt(std::max(start, other.start),
                      std::min(end, other.end));
    }

    bool
    operator==(const TimeWindow &other) const
    {
        return timeEq(start, other.start) && timeEq(end, other.end);
    }
};

inline std::ostream &
operator<<(std::ostream &os, const TimeWindow &w)
{
    return os << "[" << w.start << ", " << w.end << ")";
}

} // namespace srsim

#endif // SRSIM_UTIL_TIME_HH_
