#include "fault/repair.hh"

#include <algorithm>
#include <sstream>

#include "core/incremental.hh"
#include "engine/context.hh"
#include "metrics/metrics.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace srsim {
namespace fault {

const char *
messageFateName(MessageFate f)
{
    switch (f) {
      case MessageFate::Survived: return "survived";
      case MessageFate::Rerouted: return "rerouted";
      case MessageFate::Degraded: return "degraded";
      case MessageFate::Shed: return "shed";
    }
    return "unknown";
}

namespace {

/** Does the path cross a link below full capacity? */
bool
crossesDerated(const Topology &topo, const Path &p)
{
    for (LinkId l : p.links)
        if (topo.linkCapacity(l) < 1.0)
            return true;
    return false;
}

/** Effective packet time, mirroring the compiler's derivation. */
Time
effectivePacketTime(const SrCompilerConfig &cfg, const TimingModel &tm)
{
    if (cfg.scheduling.packetTime > 0.0)
        return cfg.scheduling.packetTime;
    return tm.packetBytes > 0.0 ? tm.packetTime() : 0.0;
}

/**
 * Messages that cannot be served at all on the degraded fabric:
 * an endpoint task sits on a dead node, or (for network messages)
 * no surviving route connects the endpoints.
 */
std::vector<MessageId>
shedSet(const TaskFlowGraph &g, const Topology &topo,
        const TaskAllocation &alloc)
{
    std::vector<MessageId> shed;
    for (const Message &m : g.messages()) {
        const NodeId s = alloc.nodeOf(m.src);
        const NodeId d = alloc.nodeOf(m.dst);
        if (!topo.nodeUp(s) || !topo.nodeUp(d)) {
            shed.push_back(m.id);
            continue;
        }
        if (s != d && topo.minimalPaths(s, d, 1).empty())
            shed.push_back(m.id);
    }
    return shed;
}

/** Copy of g without the given messages (all tasks kept). */
TaskFlowGraph
reducedTfg(const TaskFlowGraph &g, const std::vector<MessageId> &drop,
           std::vector<MessageId> &kept)
{
    TaskFlowGraph out;
    for (const Task &t : g.tasks())
        out.addTask(t.name, t.operations);
    kept.clear();
    for (const Message &m : g.messages()) {
        if (std::find(drop.begin(), drop.end(), m.id) != drop.end())
            continue;
        out.addMessage(m.name, m.src, m.dst, m.bytes);
        kept.push_back(m.id);
    }
    return out;
}

void
bumpCounter(metrics::Registry &reg, const char *name,
            std::uint64_t n = 1)
{
    if (SRSIM_METRICS_ENABLED())
        reg.counter(name).add(n);
}

/**
 * The incremental per-subset repair. Returns true when it produced
 * a verified schedule into `res`; false means "fall back to full
 * recompilation" (res untouched beyond counters).
 */
bool
tryIncrementalRepair(const TaskFlowGraph &g, const Topology &topo,
                     const TaskAllocation &alloc,
                     const TimingModel &tm,
                     const SrCompilerConfig &cfg,
                     const SrCompileResult &healthy,
                     lp::BasisCache *basisCache,
                     const engine::EngineContext *ctx,
                     RepairResult &res)
{
    const engine::EngineContext &ectx = engine::resolve(ctx);
    const TimeBounds &bounds = healthy.bounds;
    if (!healthy.intervals)
        return false; // degenerate: no network messages
    const IntervalSet &ivs = *healthy.intervals;

    // Dirty = routed over a failed or derated resource.
    std::vector<std::size_t> dirty;
    for (std::size_t i = 0; i < bounds.messages.size(); ++i) {
        const Path &p = healthy.paths.pathFor(i);
        if (!topo.pathAlive(p) || crossesDerated(topo, p))
            dirty.push_back(i);
    }

    PathAssignment pa = healthy.paths;

    if (!dirty.empty()) {
        trace::ScopedPhase phase("repair_reroute", ectx.tracer(),
                                 ectx.metricsRegistry());
        // Greedy deterministic reroute: every dirty message first
        // takes its first surviving minimal path, then (in index
        // order) keeps the candidate minimizing the peak utilization
        // with all other routes fixed.
        const GreedyRouteResult gr = greedyRouteMessages(
            g, topo, alloc, bounds, ivs, dirty,
            cfg.assign.maxPathsPerMessage, pa);
        if (!gr.ok)
            return false; // disconnected: shed path handles it
        if (gr.report.peak > 1.0 + 1e-9)
            return false;
    }

    // Re-solve only the subsets touched by rerouted messages or
    // derated links; everything else keeps its healthy segments
    // verbatim (see src/core/incremental.hh for the invariants).
    std::vector<char> dirtyFlags(bounds.messages.size(), 0);
    for (std::size_t i : dirty)
        dirtyFlags[i] = 1;

    IncrementalSolveOptions iopts;
    iopts.allocMethod = cfg.allocMethod;
    iopts.scheduling = cfg.scheduling;
    iopts.scheduling.packetTime = effectivePacketTime(cfg, tm);
    iopts.topo = &topo;
    iopts.tracePrefix = "repair";
    iopts.basisCache = basisCache;
    iopts.ctx = ctx;
    const IncrementalSolveResult inc = resolveDirtySubsets(
        bounds, ivs, pa, dirtyFlags, healthy.omega.segments, iopts);

    res.subsetsTotal = inc.subsetsTotal;
    res.subsetsResolved = inc.subsetsResolved;
    res.subsetsReused = inc.subsetsCopied;
    if (!inc.feasible)
        return false;

    GlobalSchedule omega;
    omega.period = healthy.omega.period;
    omega.paths = pa;
    omega.segments = inc.segments;

    const VerifyResult v =
        verifySchedule(g, topo, alloc, bounds, omega);
    if (!v.ok)
        return false; // safety net: fall back to full recompile

    res.feasible = true;
    res.usedIncremental = true;
    res.degradedPeriod = omega.period;
    res.omega = std::move(omega);
    res.verification = v;
    for (std::size_t i : dirty)
        res.fates[static_cast<std::size_t>(
            bounds.messages[i].msg)] = MessageFate::Rerouted;
    metrics::Registry &mreg = ectx.metricsRegistry();
    bumpCounter(mreg, "repair.incremental");
    bumpCounter(mreg, "repair.subsets_reused",
                static_cast<std::uint64_t>(res.subsetsReused));
    bumpCounter(mreg, "repair.subsets_resolved",
                static_cast<std::uint64_t>(res.subsetsResolved));
    return true;
}

} // namespace

RepairResult
repairSchedule(const TaskFlowGraph &g, const Topology &topo,
               const TaskAllocation &alloc, const TimingModel &tm,
               const SrCompilerConfig &cfg,
               const SrCompileResult &healthy,
               const RepairOptions &opts)
{
    // The repair's context: its own when set, else the compile's.
    const engine::EngineContext &ectx = engine::resolve(
        opts.ctx != nullptr ? opts.ctx : cfg.ctx);
    metrics::Registry &mreg = ectx.metricsRegistry();
    trace::ScopedPhase phase("fault_repair", ectx.tracer(), mreg);
    RepairResult res;
    res.fates.assign(static_cast<std::size_t>(g.numMessages()),
                     MessageFate::Survived);

    if (!healthy.feasible) {
        res.detail = "healthy compile was not feasible";
        return res;
    }
    if (!topo.degraded()) {
        // Nothing failed: the healthy schedule stands as-is.
        res.feasible = true;
        res.degradedPeriod = healthy.omega.period;
        res.omega = healthy.omega;
        res.verification = healthy.verification;
        res.subsetsTotal = res.subsetsReused = healthy.numSubsets;
        return res;
    }

    res.shedMessages = shedSet(g, topo, alloc);
    for (MessageId m : res.shedMessages)
        res.fates[static_cast<std::size_t>(m)] = MessageFate::Shed;

    if (res.shedMessages.empty() && opts.allowIncremental &&
        tryIncrementalRepair(g, topo, alloc, tm, cfg, healthy,
                             opts.basisCache, &ectx, res)) {
        res.omega.faultSpec = opts.faultSpec;
        return res;
    }

    // Full recompilation on the surviving fabric — on a reduced TFG
    // when messages had to be shed — at the original period first,
    // then at stretched periods.
    bumpCounter(mreg, "repair.full_recompiles");
    TaskFlowGraph reduced;
    const bool shedding = !res.shedMessages.empty();
    if (shedding)
        reduced = reducedTfg(g, res.shedMessages, res.keptMessages);
    const TaskFlowGraph &g2 = shedding ? reduced : g;

    std::vector<double> factors{1.0};
    if (opts.allowPeriodStretch)
        factors.insert(factors.end(), opts.stretchFactors.begin(),
                       opts.stretchFactors.end());

    for (double f : factors) {
        SrCompilerConfig cfg2 = cfg;
        cfg2.inputPeriod = healthy.omega.period * f;
        cfg2.verify = true;
        cfg2.ctx = &ectx;
        const SrCompileResult attempt = compileScheduledRouting(
            g2, topo, alloc, tm, cfg2);
        if (!attempt.feasible) {
            res.compile = attempt;
            std::ostringstream oss;
            oss << "recompile at period " << cfg2.inputPeriod
                << " failed at stage "
                << srFailureStageName(attempt.stage) << ": "
                << attempt.detail;
            res.detail = oss.str();
            continue;
        }

        res.feasible = true;
        res.usedFullRecompile = true;
        res.degradedPeriod = cfg2.inputPeriod;
        res.compile = attempt;
        res.omega = res.compile.omega;
        res.omega.faultSpec = opts.faultSpec;
        if (f > 1.0)
            res.omega.degradedFrom = healthy.omega.period;
        res.verification = res.compile.verification;
        res.subsetsTotal = res.subsetsResolved =
            res.compile.numSubsets;
        res.detail.clear();

        // Fates of the messages that kept their service.
        const bool stretched = f > 1.0;
        for (const MessageBounds &b :
             res.compile.bounds.messages) {
            const MessageId orig =
                shedding ? res.keptMessages[static_cast<
                               std::size_t>(b.msg)]
                         : b.msg;
            MessageFate fate = MessageFate::Survived;
            if (stretched) {
                fate = MessageFate::Degraded;
            } else {
                const int hi = healthy.bounds.indexOf[
                    static_cast<std::size_t>(orig)];
                const std::size_t ni = static_cast<std::size_t>(
                    res.compile.bounds.indexOf[
                        static_cast<std::size_t>(b.msg)]);
                if (hi < 0 ||
                    !(res.compile.paths.pathFor(ni) ==
                      healthy.paths.pathFor(
                          static_cast<std::size_t>(hi))))
                    fate = MessageFate::Rerouted;
            }
            res.fates[static_cast<std::size_t>(orig)] = fate;
        }
        if (stretched) {
            // Local messages degrade with the period too.
            for (std::size_t i = 0; i < res.fates.size(); ++i)
                if (res.fates[i] == MessageFate::Survived)
                    res.fates[i] = MessageFate::Degraded;
        }
        bumpCounter(mreg, "repair.subsets_resolved",
                    static_cast<std::uint64_t>(
                        res.subsetsResolved));
        return res;
    }

    bumpCounter(mreg, "repair.failures");
    return res;
}

} // namespace fault
} // namespace srsim
