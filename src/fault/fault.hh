/**
 * @file
 * Deterministic fault model for the interconnect fabric.
 *
 * A fault specification is a ';'- or ','-separated list of events:
 *
 *   link:A-B        fail the link between nodes A and B
 *   link:#I         fail link id I
 *   node:N          fail node N (and all its incident links)
 *   derate:A-B=F    derate the A-B link to duty-cycle fraction F
 *   derate:#I=F     derate link id I to fraction F
 *   rand:K:S        fail K distinct live links drawn with seed S
 *
 * Any event may carry an "@T" suffix giving the absolute simulation
 * time at which the fault strikes; events without a suffix are static
 * (present from t = 0). Static application mutates only the
 * topology's fault *mask* — the structural tables are untouched, so
 * clearFaults() restores the healthy fabric.
 *
 * Parsing is split from resolution: parseFaultSpec() validates the
 * grammar without a topology, resolveFaults() binds endpoint pairs
 * and rand draws to concrete link ids on a given fabric. Both fail
 * loudly (FatalError) on malformed or unresolvable input, so fuzz
 * and CLI layers can surface clean diagnostics.
 */

#ifndef SRSIM_FAULT_FAULT_HH_
#define SRSIM_FAULT_FAULT_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.hh"

namespace srsim {
namespace fault {

/** One parsed fault event (pre-resolution). */
struct FaultEvent
{
    enum class Kind { LinkFail, NodeFail, LinkDerate, RandLinks };

    Kind kind = Kind::LinkFail;
    NodeId a = kInvalidNode;  ///< link endpoint (endpoint form)
    NodeId b = kInvalidNode;  ///< link endpoint (endpoint form)
    LinkId link = kInvalidLink; ///< explicit link id ("#I" form)
    NodeId node = kInvalidNode; ///< failed node (NodeFail)
    double factor = 1.0;        ///< derate duty-cycle fraction
    int count = 0;              ///< RandLinks: number of links
    std::uint64_t seed = 0;     ///< RandLinks: draw seed
    double at = 0.0;            ///< absolute strike time; 0 = static

    bool timed() const { return at > 0.0; }
};

/** A parsed fault specification. */
struct FaultSpec
{
    std::string raw;                ///< original spec text
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** @return the spec in its original textual form. */
    const std::string &str() const { return raw; }
};

/** Parse a fault spec; FatalError on malformed input. */
FaultSpec parseFaultSpec(const std::string &spec);

/**
 * A fault event bound to concrete resources of one topology.
 * RandLinks events expand into `count` LinkFail entries.
 */
struct ResolvedFault
{
    FaultEvent::Kind kind = FaultEvent::Kind::LinkFail;
    LinkId link = kInvalidLink;
    NodeId node = kInvalidNode;
    double factor = 1.0;
    double at = 0.0;

    bool timed() const { return at > 0.0; }
};

/**
 * Bind a spec's events to links/nodes of `topo`. Endpoint pairs must
 * be adjacent, ids in range; rand draws pick distinct links
 * deterministically from the seed. FatalError otherwise.
 */
std::vector<ResolvedFault> resolveFaults(const FaultSpec &spec,
                                         const Topology &topo);

/**
 * Apply resolved faults to the topology's mask.
 * @param includeTimed when false, only static (t = 0) events apply —
 *        used when timed events are replayed by the simulator.
 */
void applyFaults(const std::vector<ResolvedFault> &faults,
                 Topology &topo, bool includeTimed = true);

/** Parse + resolve + apply static events in one step. */
std::vector<ResolvedFault> applyFaultSpec(const std::string &spec,
                                          Topology &topo,
                                          bool includeTimed = true);

} // namespace fault
} // namespace srsim

#endif // SRSIM_FAULT_FAULT_HH_
