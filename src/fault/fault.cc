#include "fault/fault.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/logging.hh"
#include "util/rng.hh"

namespace srsim {
namespace fault {
namespace {

/** Split on ';' and ',' with whitespace trimming. */
std::vector<std::string>
splitEvents(const std::string &spec)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : spec) {
        if (ch == ';' || ch == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(ch))) {
            cur += ch;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/** Strict non-negative number parse; FatalError with context. */
double
parseNumber(const std::string &s, const std::string &what,
            const std::string &event)
{
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(s, &pos);
    } catch (const std::exception &) {
        pos = 0;
    }
    if (pos != s.size() || s.empty())
        fatal("fault spec: bad ", what, " '", s, "' in event '",
              event, "'");
    if (v < 0.0)
        fatal("fault spec: negative ", what, " in event '", event,
              "'");
    return v;
}

int
parseInt(const std::string &s, const std::string &what,
         const std::string &event)
{
    const double v = parseNumber(s, what, event);
    const int i = static_cast<int>(v);
    if (static_cast<double>(i) != v)
        fatal("fault spec: non-integer ", what, " in event '", event,
              "'");
    return i;
}

/** Parse "A-B" or "#I" into (a, b) endpoints or an explicit id. */
void
parseLinkRef(const std::string &s, const std::string &event,
             FaultEvent &ev)
{
    if (!s.empty() && s[0] == '#') {
        ev.link = parseInt(s.substr(1), "link id", event);
        return;
    }
    const std::size_t dash = s.find('-');
    if (dash == std::string::npos)
        fatal("fault spec: expected 'A-B' or '#I' link reference, "
              "got '", s, "' in event '", event, "'");
    ev.a = parseInt(s.substr(0, dash), "node id", event);
    ev.b = parseInt(s.substr(dash + 1), "node id", event);
}

FaultEvent
parseEvent(const std::string &text)
{
    FaultEvent ev;
    std::string body = text;

    const std::size_t atPos = body.rfind('@');
    if (atPos != std::string::npos) {
        ev.at = parseNumber(body.substr(atPos + 1), "time", text);
        body = body.substr(0, atPos);
    }

    const std::size_t colon = body.find(':');
    if (colon == std::string::npos)
        fatal("fault spec: event '", text,
              "' has no 'kind:' prefix");
    const std::string kind = body.substr(0, colon);
    const std::string arg = body.substr(colon + 1);

    if (kind == "link") {
        ev.kind = FaultEvent::Kind::LinkFail;
        parseLinkRef(arg, text, ev);
    } else if (kind == "node") {
        ev.kind = FaultEvent::Kind::NodeFail;
        ev.node = parseInt(arg, "node id", text);
    } else if (kind == "derate") {
        ev.kind = FaultEvent::Kind::LinkDerate;
        const std::size_t eq = arg.find('=');
        if (eq == std::string::npos)
            fatal("fault spec: derate event '", text,
                  "' missing '=F' factor");
        parseLinkRef(arg.substr(0, eq), text, ev);
        ev.factor = parseNumber(arg.substr(eq + 1), "factor", text);
        if (ev.factor <= 0.0 || ev.factor > 1.0)
            fatal("fault spec: derate factor ", ev.factor,
                  " outside (0,1] in event '", text, "'");
    } else if (kind == "rand") {
        ev.kind = FaultEvent::Kind::RandLinks;
        const std::size_t sep = arg.find(':');
        if (sep == std::string::npos)
            fatal("fault spec: rand event '", text,
                  "' must be 'rand:K:S'");
        ev.count = parseInt(arg.substr(0, sep), "count", text);
        ev.seed = static_cast<std::uint64_t>(
            parseNumber(arg.substr(sep + 1), "seed", text));
        if (ev.count <= 0)
            fatal("fault spec: rand count must be positive in "
                  "event '", text, "'");
    } else {
        fatal("fault spec: unknown event kind '", kind, "' in '",
              text, "'");
    }
    return ev;
}

LinkId
resolveLinkRef(const FaultEvent &ev, const Topology &topo,
               const char *what)
{
    if (ev.link != kInvalidLink) {
        if (ev.link < 0 || ev.link >= topo.numLinks())
            fatal("fault spec: ", what, " link id ", ev.link,
                  " out of range for ", topo.name(), " (",
                  topo.numLinks(), " links)");
        return ev.link;
    }
    if (ev.a < 0 || ev.a >= topo.numNodes() || ev.b < 0 ||
        ev.b >= topo.numNodes())
        fatal("fault spec: ", what, " endpoint out of range for ",
              topo.name());
    const LinkId l = topo.linkBetween(ev.a, ev.b);
    if (l == kInvalidLink)
        fatal("fault spec: nodes ", ev.a, " and ", ev.b,
              " are not adjacent in ", topo.name());
    return l;
}

} // namespace

FaultSpec
parseFaultSpec(const std::string &spec)
{
    FaultSpec out;
    out.raw = spec;
    for (const std::string &e : splitEvents(spec))
        out.events.push_back(parseEvent(e));
    return out;
}

std::vector<ResolvedFault>
resolveFaults(const FaultSpec &spec, const Topology &topo)
{
    std::vector<ResolvedFault> out;
    for (const FaultEvent &ev : spec.events) {
        switch (ev.kind) {
          case FaultEvent::Kind::LinkFail: {
            ResolvedFault r;
            r.kind = ev.kind;
            r.link = resolveLinkRef(ev, topo, "link");
            r.at = ev.at;
            out.push_back(r);
            break;
          }
          case FaultEvent::Kind::LinkDerate: {
            ResolvedFault r;
            r.kind = ev.kind;
            r.link = resolveLinkRef(ev, topo, "derate");
            r.factor = ev.factor;
            r.at = ev.at;
            out.push_back(r);
            break;
          }
          case FaultEvent::Kind::NodeFail: {
            if (ev.node < 0 || ev.node >= topo.numNodes())
                fatal("fault spec: node id ", ev.node,
                      " out of range for ", topo.name());
            ResolvedFault r;
            r.kind = ev.kind;
            r.node = ev.node;
            r.at = ev.at;
            out.push_back(r);
            break;
          }
          case FaultEvent::Kind::RandLinks: {
            if (ev.count > topo.numLinks())
                fatal("fault spec: rand:", ev.count,
                      " exceeds the ", topo.numLinks(),
                      " links of ", topo.name());
            // Deterministic distinct draw: shuffle all link ids
            // with the event's own seed and take a prefix.
            std::vector<LinkId> ids(
                static_cast<std::size_t>(topo.numLinks()));
            for (LinkId l = 0; l < topo.numLinks(); ++l)
                ids[static_cast<std::size_t>(l)] = l;
            Rng rng(deriveSeed(0xFA171E57ull, ev.seed));
            rng.shuffle(ids);
            for (int i = 0; i < ev.count; ++i) {
                ResolvedFault r;
                r.kind = FaultEvent::Kind::LinkFail;
                r.link = ids[static_cast<std::size_t>(i)];
                r.at = ev.at;
                out.push_back(r);
            }
            break;
          }
        }
    }
    return out;
}

void
applyFaults(const std::vector<ResolvedFault> &faults, Topology &topo,
            bool includeTimed)
{
    for (const ResolvedFault &f : faults) {
        if (f.timed() && !includeTimed)
            continue;
        switch (f.kind) {
          case FaultEvent::Kind::LinkFail:
            topo.failLink(f.link);
            break;
          case FaultEvent::Kind::NodeFail:
            topo.failNode(f.node);
            break;
          case FaultEvent::Kind::LinkDerate:
            topo.derateLink(f.link, f.factor);
            break;
          case FaultEvent::Kind::RandLinks:
            panic("rand fault events must be resolved before apply");
        }
    }
}

std::vector<ResolvedFault>
applyFaultSpec(const std::string &spec, Topology &topo,
               bool includeTimed)
{
    const std::vector<ResolvedFault> faults =
        resolveFaults(parseFaultSpec(spec), topo);
    applyFaults(faults, topo, includeTimed);
    return faults;
}

} // namespace fault
} // namespace srsim
