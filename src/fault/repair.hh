/**
 * @file
 * Fault-aware rescheduling: repair a healthy compile against a
 * degraded fabric.
 *
 * The repair pipeline exploits two invariants of the Fig. 3
 * decomposition:
 *
 *  - message time bounds and the interval decomposition depend only
 *    on the TFG, the allocation, and the timing model — not on
 *    routes — so they survive any link fault unchanged;
 *  - maximal related subsets share no (link, interval) pair, so a
 *    subset whose members kept their routes (and whose links kept
 *    full capacity) keeps its allocation and segments verbatim.
 *
 * The fast path therefore reroutes only the messages whose paths
 * cross a failed or derated resource and re-solves only the subsets
 * those messages land in; everything else is copied from the healthy
 * schedule. When that fails (or messages must be shed because a node
 * died or the fabric disconnected), it falls back to a full
 * recompilation on the surviving fabric, and finally to stretching
 * the input period — reporting per message whether its deadline
 * survived, was rerouted, degraded, or shed.
 */

#ifndef SRSIM_FAULT_REPAIR_HH_
#define SRSIM_FAULT_REPAIR_HH_

#include <cstddef>
#include <string>
#include <vector>

#include "core/sr_compiler.hh"

namespace srsim {

namespace lp {
class BasisCache;
}

namespace fault {

/** What happened to one message of the original TFG under repair. */
enum class MessageFate
{
    Survived,  ///< same route, same period, windows intact
    Rerouted,  ///< new route, original period still met
    Degraded,  ///< schedulable only at a stretched period
    Shed,      ///< dropped: endpoint dead or fabric disconnected
};

/** @return human-readable fate name. */
const char *messageFateName(MessageFate f);

/** Repair policy knobs. */
struct RepairOptions
{
    /** Try the incremental per-subset repair before recompiling. */
    bool allowIncremental = true;
    /** Try stretched periods when the original is infeasible. */
    bool allowPeriodStretch = true;
    /** Stretch factors tried in order on the original period. */
    std::vector<double> stretchFactors = {1.25, 1.5, 2.0, 3.0, 4.0};
    /** Fault spec recorded on the repaired schedule, if any. */
    std::string faultSpec;
    /**
     * When given, the incremental path's subset LPs warm-start from
     * (and store back to) this basis cache, so a caller repairing
     * against a sequence of faults re-solves recurring subsets in a
     * handful of pivots. nullptr keeps every solve cold.
     */
    lp::BasisCache *basisCache = nullptr;
    /**
     * Engine context the repair runs under (tracer, metrics,
     * thread pool, solver kind). Falls back to the compile config's
     * context, then the process default, when nullptr.
     */
    const engine::EngineContext *ctx = nullptr;
};

/** Outcome of a repair. */
struct RepairResult
{
    bool feasible = false;
    /** The incremental per-subset path produced the schedule. */
    bool usedIncremental = false;
    /** A full recompile on the degraded fabric was needed. */
    bool usedFullRecompile = false;

    /** Period of the repaired schedule (== original unless stretched). */
    Time degradedPeriod = 0.0;

    /**
     * The degraded schedule. On the incremental path it indexes the
     * original network messages; after a shedding recompile it
     * indexes the reduced problem (see keptMessages).
     */
    GlobalSchedule omega;

    /** Full-recompile result (empty on the incremental path). */
    SrCompileResult compile;

    /** Per original MessageId: what happened to it. */
    std::vector<MessageFate> fates;
    /** Original ids of shed messages (sorted). */
    std::vector<MessageId> shedMessages;
    /**
     * After a shedding recompile: reduced MessageId -> original
     * MessageId. Identity-free (empty) when nothing was shed.
     */
    std::vector<MessageId> keptMessages;

    /** Subset bookkeeping of the incremental path. */
    std::size_t subsetsTotal = 0;
    std::size_t subsetsReused = 0;
    std::size_t subsetsResolved = 0;

    /** Independent verification on the degraded topology. */
    VerifyResult verification;

    /** Failure explanation when !feasible. */
    std::string detail;
};

/**
 * Repair `healthy` (a feasible compile of (g, alloc, tm, cfg) on the
 * healthy fabric) against the already-degraded `topo`.
 *
 * The incremental path runs when no message must be shed: dirty
 * messages (routes crossing a failed or derated resource) are
 * rerouted over the surviving fabric and only the subsets containing
 * them are re-solved. Otherwise — or when the fast path fails — the
 * whole problem is recompiled on the degraded topology (on a reduced
 * TFG when messages were shed), and finally retried at stretched
 * periods. Every produced schedule is re-verified on `topo`.
 */
RepairResult
repairSchedule(const TaskFlowGraph &g, const Topology &topo,
               const TaskAllocation &alloc, const TimingModel &tm,
               const SrCompilerConfig &cfg,
               const SrCompileResult &healthy,
               const RepairOptions &opts = {});

} // namespace fault
} // namespace srsim

#endif // SRSIM_FAULT_REPAIR_HH_
