/**
 * @file
 * Mixed-radix node addressing shared by GHC, torus, and mesh.
 *
 * Dimension 0 is the least-significant digit (the "LSD" of the
 * paper's LSD-to-MSD routing function).
 */

#ifndef SRSIM_TOPOLOGY_MIXED_RADIX_HH_
#define SRSIM_TOPOLOGY_MIXED_RADIX_HH_

#include <numeric>
#include <string>
#include <vector>

#include "topology/path.hh"
#include "util/logging.hh"

namespace srsim {

/** Converts between flat node ids and mixed-radix digit vectors. */
class MixedRadix
{
  public:
    /** @param radices radix per dimension, dimension 0 first */
    explicit MixedRadix(std::vector<int> radices)
        : radices_(std::move(radices))
    {
        SRSIM_ASSERT(!radices_.empty(), "need at least one dimension");
        for (int m : radices_)
            SRSIM_ASSERT(m >= 2, "radix must be >= 2, got ", m);
    }

    std::size_t dims() const { return radices_.size(); }
    int radix(std::size_t d) const { return radices_[d]; }
    const std::vector<int> &radices() const { return radices_; }

    /** Total number of addresses. */
    int
    size() const
    {
        long n = 1;
        for (int m : radices_)
            n *= m;
        SRSIM_ASSERT(n <= 1 << 24, "topology too large");
        return static_cast<int>(n);
    }

    /** Flat id -> digit vector. */
    std::vector<int>
    toDigits(NodeId id) const
    {
        SRSIM_ASSERT(id >= 0 && id < size(), "bad address ", id);
        std::vector<int> d(dims());
        for (std::size_t i = 0; i < dims(); ++i) {
            d[i] = id % radices_[i];
            id /= radices_[i];
        }
        return d;
    }

    /** Digit vector -> flat id. */
    NodeId
    toId(const std::vector<int> &digits) const
    {
        SRSIM_ASSERT(digits.size() == dims(), "bad digit count");
        NodeId id = 0;
        for (std::size_t i = dims(); i-- > 0;) {
            SRSIM_ASSERT(digits[i] >= 0 && digits[i] < radices_[i],
                         "digit ", digits[i], " out of radix ",
                         radices_[i]);
            id = id * radices_[i] + digits[i];
        }
        return id;
    }

    /** Render e.g. "(4,4,4)" with dimension 0 last (MSD first). */
    std::string
    radixString() const
    {
        std::string s = "(";
        for (std::size_t i = dims(); i-- > 0;) {
            s += std::to_string(radices_[i]);
            if (i != 0)
                s += ",";
        }
        return s + ")";
    }

  private:
    std::vector<int> radices_;
};

} // namespace srsim

#endif // SRSIM_TOPOLOGY_MIXED_RADIX_HH_
