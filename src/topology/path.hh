/**
 * @file
 * Node/link identifiers and the Path type shared by routing code.
 */

#ifndef SRSIM_TOPOLOGY_PATH_HH_
#define SRSIM_TOPOLOGY_PATH_HH_

#include <ostream>
#include <vector>

namespace srsim {

/** Index of a node in a topology. */
using NodeId = int;
/** Index of a (bidirectional half-duplex) link in a topology. */
using LinkId = int;

constexpr NodeId kInvalidNode = -1;
constexpr LinkId kInvalidLink = -1;

/**
 * A route through the network: the visited node sequence and the link
 * traversed between each consecutive pair.
 *
 * Invariant: links.size() + 1 == nodes.size() (except for the empty
 * default-constructed path). A path from a node to itself has one node
 * and no links.
 */
struct Path
{
    std::vector<NodeId> nodes;
    std::vector<LinkId> links;

    /** @return number of hops (links traversed). */
    std::size_t hops() const { return links.size(); }

    bool empty() const { return nodes.empty(); }

    NodeId source() const { return nodes.empty() ? kInvalidNode
                                                 : nodes.front(); }
    NodeId destination() const { return nodes.empty() ? kInvalidNode
                                                      : nodes.back(); }

    bool
    operator==(const Path &other) const
    {
        return nodes == other.nodes && links == other.links;
    }
};

inline std::ostream &
operator<<(std::ostream &os, const Path &p)
{
    os << "[";
    for (std::size_t i = 0; i < p.nodes.size(); ++i)
        os << (i ? " -> " : "") << p.nodes[i];
    return os << "]";
}

} // namespace srsim

#endif // SRSIM_TOPOLOGY_PATH_HH_
