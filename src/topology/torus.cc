#include "topology/torus.hh"

#include <algorithm>

#include "util/logging.hh"

namespace srsim {

Torus::Torus(std::vector<int> radices)
    : addr_(std::move(radices))
{
    setNumNodes(addr_.size());
    const int n = addr_.size();
    for (NodeId u = 0; u < n; ++u) {
        std::vector<int> du = addr_.toDigits(u);
        for (std::size_t d = 0; d < addr_.dims(); ++d) {
            const int k = addr_.radix(d);
            std::vector<int> dv = du;
            dv[d] = (du[d] + 1) % k;
            NodeId v = addr_.toId(dv);
            if (v != u)
                addLink(std::min(u, v), std::max(u, v));
        }
    }
}

std::string
Torus::name() const
{
    std::string s;
    for (std::size_t i = addr_.dims(); i-- > 0;) {
        s += std::to_string(addr_.radix(i));
        if (i != 0)
            s += "x";
    }
    return s + " torus";
}

std::vector<Torus::DimMove>
Torus::moves(NodeId src, NodeId dst) const
{
    const auto a = addr_.toDigits(src);
    const auto b = addr_.toDigits(dst);
    std::vector<DimMove> out;
    for (std::size_t d = 0; d < addr_.dims(); ++d) {
        const int k = addr_.radix(d);
        const int fwd = ((b[d] - a[d]) % k + k) % k;
        if (fwd == 0)
            continue;
        const int bwd = k - fwd;
        DimMove mv;
        mv.dim = d;
        if (fwd < bwd) {
            mv.steps = fwd;
            mv.dir = +1;
            mv.tie = false;
        } else if (bwd < fwd) {
            mv.steps = bwd;
            mv.dir = -1;
            mv.tie = false;
        } else {
            mv.steps = fwd;
            mv.dir = +1; // canonical choice; tie recorded
            // For k == 2 both directions traverse the same physical
            // link, so there is no real alternative.
            mv.tie = k > 2;
        }
        out.push_back(mv);
    }
    return out;
}

int
Torus::distanceImpl(NodeId src, NodeId dst) const
{
    checkNode(src);
    checkNode(dst);
    int d = 0;
    for (const DimMove &mv : moves(src, dst))
        d += mv.steps;
    return d;
}

void
Torus::enumerate(std::vector<int> cur, std::vector<Walk> walks,
                 std::vector<NodeId> &nodes, std::size_t maxPaths,
                 std::vector<Path> &out) const
{
    if (maxPaths != 0 && out.size() >= maxPaths)
        return;
    bool done = true;
    for (const Walk &w : walks)
        done = done && w.left == 0;
    if (done) {
        out.push_back(makePath(nodes));
        return;
    }
    for (std::size_t i = 0; i < walks.size(); ++i) {
        if (walks[i].left == 0)
            continue;
        const std::size_t d = walks[i].dim;
        const int k = addr_.radix(d);
        const int saved = cur[d];
        cur[d] = ((cur[d] + walks[i].dir) % k + k) % k;
        nodes.push_back(addr_.toId(cur));
        --walks[i].left;
        enumerate(cur, walks, nodes, maxPaths, out);
        ++walks[i].left;
        nodes.pop_back();
        cur[d] = saved;
        if (maxPaths != 0 && out.size() >= maxPaths)
            return;
    }
}

std::vector<Path>
Torus::minimalPathsImpl(NodeId src, NodeId dst, std::size_t maxPaths) const
{
    checkNode(src);
    checkNode(dst);
    const auto mvs = moves(src, dst);

    // Expand direction choices for tie dimensions (offset == k/2).
    std::vector<std::size_t> tie_idx;
    for (std::size_t i = 0; i < mvs.size(); ++i)
        if (mvs[i].tie)
            tie_idx.push_back(i);

    std::vector<Path> out;
    const std::size_t combos = std::size_t{1} << tie_idx.size();
    for (std::size_t mask = 0; mask < combos; ++mask) {
        std::vector<Walk> walks;
        for (std::size_t i = 0; i < mvs.size(); ++i) {
            Walk w{mvs[i].dim, mvs[i].dir, mvs[i].steps};
            walks.push_back(w);
        }
        for (std::size_t t = 0; t < tie_idx.size(); ++t)
            if (mask & (std::size_t{1} << t))
                walks[tie_idx[t]].dir = -1;
        std::vector<NodeId> nodes{src};
        enumerate(addr_.toDigits(src), std::move(walks), nodes,
                  maxPaths, out);
        if (maxPaths != 0 && out.size() >= maxPaths)
            break;
    }
    if (out.empty())
        out.push_back(makePath({src}));
    return out;
}

Path
Torus::routeLsdToMsdImpl(NodeId src, NodeId dst) const
{
    checkNode(src);
    checkNode(dst);
    auto cur = addr_.toDigits(src);
    std::vector<NodeId> nodes{src};
    for (const DimMove &mv : moves(src, dst)) {
        const int k = addr_.radix(mv.dim);
        for (int s = 0; s < mv.steps; ++s) {
            cur[mv.dim] = ((cur[mv.dim] + mv.dir) % k + k) % k;
            nodes.push_back(addr_.toId(cur));
        }
    }
    return makePath(nodes);
}

} // namespace srsim
