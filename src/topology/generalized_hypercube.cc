#include "topology/generalized_hypercube.hh"

#include <algorithm>

#include "util/logging.hh"

namespace srsim {

GeneralizedHypercube::GeneralizedHypercube(std::vector<int> radices)
    : addr_(std::move(radices))
{
    setNumNodes(addr_.size());
    const int n = addr_.size();
    for (NodeId u = 0; u < n; ++u) {
        std::vector<int> du = addr_.toDigits(u);
        for (std::size_t d = 0; d < addr_.dims(); ++d) {
            std::vector<int> dv = du;
            for (int val = 0; val < addr_.radix(d); ++val) {
                if (val == du[d])
                    continue;
                dv[d] = val;
                NodeId v = addr_.toId(dv);
                if (u < v)
                    addLink(u, v);
            }
        }
    }
}

GeneralizedHypercube
GeneralizedHypercube::binaryCube(int dimensions)
{
    SRSIM_ASSERT(dimensions >= 1, "need at least one dimension");
    return GeneralizedHypercube(
        std::vector<int>(static_cast<std::size_t>(dimensions), 2));
}

std::string
GeneralizedHypercube::name() const
{
    bool binary = true;
    for (std::size_t d = 0; d < addr_.dims(); ++d)
        binary = binary && addr_.radix(d) == 2;
    if (binary)
        return "binary " + std::to_string(addr_.dims()) + "-cube";
    return "GHC" + addr_.radixString();
}

int
GeneralizedHypercube::distanceImpl(NodeId src, NodeId dst) const
{
    checkNode(src);
    checkNode(dst);
    const auto a = addr_.toDigits(src);
    const auto b = addr_.toDigits(dst);
    int d = 0;
    for (std::size_t i = 0; i < addr_.dims(); ++i)
        d += (a[i] != b[i]);
    return d;
}

void
GeneralizedHypercube::enumerate(std::vector<int> cur,
                                const std::vector<int> &dst,
                                std::vector<std::size_t> remaining_dims,
                                std::vector<NodeId> &nodes,
                                std::size_t maxPaths,
                                std::vector<Path> &out) const
{
    if (maxPaths != 0 && out.size() >= maxPaths)
        return;
    if (remaining_dims.empty()) {
        out.push_back(makePath(nodes));
        return;
    }
    for (std::size_t i = 0; i < remaining_dims.size(); ++i) {
        const std::size_t dim = remaining_dims[i];
        std::vector<std::size_t> rest = remaining_dims;
        rest.erase(rest.begin() + static_cast<long>(i));
        const int saved = cur[dim];
        cur[dim] = dst[dim];
        nodes.push_back(addr_.toId(cur));
        enumerate(cur, dst, std::move(rest), nodes, maxPaths, out);
        nodes.pop_back();
        cur[dim] = saved;
        if (maxPaths != 0 && out.size() >= maxPaths)
            return;
    }
}

std::vector<Path>
GeneralizedHypercube::minimalPathsImpl(NodeId src, NodeId dst,
                                   std::size_t maxPaths) const
{
    checkNode(src);
    checkNode(dst);
    const auto a = addr_.toDigits(src);
    const auto b = addr_.toDigits(dst);
    std::vector<std::size_t> diff;
    for (std::size_t i = 0; i < addr_.dims(); ++i)
        if (a[i] != b[i])
            diff.push_back(i);

    std::vector<Path> out;
    std::vector<NodeId> nodes{src};
    enumerate(a, b, diff, nodes, maxPaths, out);
    return out;
}

Path
GeneralizedHypercube::routeLsdToMsdImpl(NodeId src, NodeId dst) const
{
    checkNode(src);
    checkNode(dst);
    auto cur = addr_.toDigits(src);
    const auto target = addr_.toDigits(dst);
    std::vector<NodeId> nodes{src};
    for (std::size_t d = 0; d < addr_.dims(); ++d) {
        if (cur[d] != target[d]) {
            cur[d] = target[d];
            nodes.push_back(addr_.toId(cur));
        }
    }
    return makePath(nodes);
}

} // namespace srsim
