#include "topology/topology.hh"

#include <deque>

#include "util/logging.hh"

namespace srsim {

const Link &
Topology::link(LinkId id) const
{
    SRSIM_ASSERT(id >= 0 && id < numLinks(), "bad link id ", id);
    return links_[static_cast<std::size_t>(id)];
}

const std::vector<LinkId> &
Topology::linksAt(NodeId n) const
{
    checkNode(n);
    return adjacency_[static_cast<std::size_t>(n)];
}

std::vector<NodeId>
Topology::neighborsOf(NodeId n) const
{
    std::vector<NodeId> out;
    for (LinkId l : linksAt(n))
        out.push_back(link(l).other(n));
    return out;
}

LinkId
Topology::linkBetween(NodeId a, NodeId b) const
{
    checkNode(a);
    checkNode(b);
    for (LinkId l : adjacency_[static_cast<std::size_t>(a)]) {
        const Link &lk = link(l);
        if ((lk.a == a && lk.b == b) || (lk.a == b && lk.b == a))
            return l;
    }
    return kInvalidLink;
}

int
Topology::distance(NodeId src, NodeId dst) const
{
    checkNode(src);
    checkNode(dst);
    if (src == dst)
        return 0;
    std::vector<int> dist(static_cast<std::size_t>(numNodes()), -1);
    std::deque<NodeId> queue{src};
    dist[static_cast<std::size_t>(src)] = 0;
    while (!queue.empty()) {
        NodeId u = queue.front();
        queue.pop_front();
        for (NodeId v : neighborsOf(u)) {
            auto &d = dist[static_cast<std::size_t>(v)];
            if (d < 0) {
                d = dist[static_cast<std::size_t>(u)] + 1;
                if (v == dst)
                    return d;
                queue.push_back(v);
            }
        }
    }
    panic("topology ", name(), " is disconnected between ", src,
          " and ", dst);
}

Path
Topology::makePath(const std::vector<NodeId> &nodes) const
{
    Path p;
    p.nodes = nodes;
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
        LinkId l = linkBetween(nodes[i], nodes[i + 1]);
        SRSIM_ASSERT(l != kInvalidLink, "nodes ", nodes[i], " and ",
                     nodes[i + 1], " are not adjacent in ", name());
        p.links.push_back(l);
    }
    return p;
}

bool
Topology::validPath(const Path &p) const
{
    if (p.nodes.empty())
        return false;
    if (p.links.size() + 1 != p.nodes.size())
        return false;
    for (std::size_t i = 0; i < p.links.size(); ++i) {
        if (p.links[i] < 0 || p.links[i] >= numLinks())
            return false;
        const Link &lk = link(p.links[i]);
        const NodeId u = p.nodes[i];
        const NodeId v = p.nodes[i + 1];
        if (!((lk.a == u && lk.b == v) || (lk.a == v && lk.b == u)))
            return false;
    }
    return true;
}

void
Topology::setNumNodes(int n)
{
    SRSIM_ASSERT(n > 0, "topology must have at least one node");
    adjacency_.assign(static_cast<std::size_t>(n), {});
}

void
Topology::addLink(NodeId a, NodeId b)
{
    checkNode(a);
    checkNode(b);
    SRSIM_ASSERT(a != b, "self-link at node ", a);
    if (linkBetween(a, b) != kInvalidLink)
        return; // coalesce duplicates (radix-2 wraparound)
    const LinkId id = static_cast<LinkId>(links_.size());
    links_.push_back(Link{id, a, b});
    adjacency_[static_cast<std::size_t>(a)].push_back(id);
    adjacency_[static_cast<std::size_t>(b)].push_back(id);
}

void
Topology::checkNode(NodeId n) const
{
    SRSIM_ASSERT(n >= 0 && n < numNodes(), "bad node id ", n);
}

} // namespace srsim
