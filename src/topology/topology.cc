#include "topology/topology.hh"

#include <deque>
#include <functional>

#include "util/logging.hh"

namespace srsim {

const Link &
Topology::link(LinkId id) const
{
    SRSIM_ASSERT(id >= 0 && id < numLinks(), "bad link id ", id);
    return links_[static_cast<std::size_t>(id)];
}

const std::vector<LinkId> &
Topology::linksAt(NodeId n) const
{
    checkNode(n);
    return adjacency_[static_cast<std::size_t>(n)];
}

std::vector<NodeId>
Topology::neighborsOf(NodeId n) const
{
    std::vector<NodeId> out;
    for (LinkId l : linksAt(n))
        out.push_back(link(l).other(n));
    return out;
}

LinkId
Topology::linkBetween(NodeId a, NodeId b) const
{
    checkNode(a);
    checkNode(b);
    for (LinkId l : adjacency_[static_cast<std::size_t>(a)]) {
        const Link &lk = link(l);
        if ((lk.a == a && lk.b == b) || (lk.a == b && lk.b == a))
            return l;
    }
    return kInvalidLink;
}

int
Topology::distanceImpl(NodeId src, NodeId dst) const
{
    checkNode(src);
    checkNode(dst);
    if (src == dst)
        return 0;
    std::vector<int> dist(static_cast<std::size_t>(numNodes()), -1);
    std::deque<NodeId> queue{src};
    dist[static_cast<std::size_t>(src)] = 0;
    while (!queue.empty()) {
        NodeId u = queue.front();
        queue.pop_front();
        for (NodeId v : neighborsOf(u)) {
            auto &d = dist[static_cast<std::size_t>(v)];
            if (d < 0) {
                d = dist[static_cast<std::size_t>(u)] + 1;
                if (v == dst)
                    return d;
                queue.push_back(v);
            }
        }
    }
    panic("topology ", name(), " is disconnected between ", src,
          " and ", dst);
}

int
Topology::distance(NodeId src, NodeId dst) const
{
    if (!degraded_)
        return distanceImpl(src, dst);
    checkNode(src);
    checkNode(dst);
    const std::vector<int> lvl = maskedLevels(src);
    const int d = lvl[static_cast<std::size_t>(dst)];
    if (d < 0)
        panic("degraded topology ", name(),
              " is disconnected between ", src, " and ", dst);
    return d;
}

std::vector<Path>
Topology::minimalPaths(NodeId src, NodeId dst,
                       std::size_t maxPaths) const
{
    if (!degraded_)
        return minimalPathsImpl(src, dst, maxPaths);
    return maskedMinimalPaths(src, dst, maxPaths);
}

Path
Topology::routeLsdToMsd(NodeId src, NodeId dst) const
{
    if (!degraded_)
        return routeLsdToMsdImpl(src, dst);
    const Path analytic = routeLsdToMsdImpl(src, dst);
    if (pathAlive(analytic))
        return analytic;
    std::vector<Path> masked = maskedMinimalPaths(src, dst, 1);
    if (masked.empty())
        return Path{}; // disconnected by faults
    return masked.front();
}

std::vector<int>
Topology::maskedLevels(NodeId src) const
{
    std::vector<int> dist(static_cast<std::size_t>(numNodes()), -1);
    if (!nodeUp(src))
        return dist;
    std::deque<NodeId> queue{src};
    dist[static_cast<std::size_t>(src)] = 0;
    while (!queue.empty()) {
        NodeId u = queue.front();
        queue.pop_front();
        for (LinkId l : linksAt(u)) {
            if (!linkUp(l))
                continue;
            const NodeId v = link(l).other(u);
            if (!nodeUp(v))
                continue;
            auto &d = dist[static_cast<std::size_t>(v)];
            if (d < 0) {
                d = dist[static_cast<std::size_t>(u)] + 1;
                queue.push_back(v);
            }
        }
    }
    return dist;
}

std::vector<Path>
Topology::maskedMinimalPaths(NodeId src, NodeId dst,
                             std::size_t maxPaths) const
{
    checkNode(src);
    checkNode(dst);
    std::vector<Path> out;
    if (!nodeUp(src) || !nodeUp(dst))
        return out;
    if (src == dst) {
        Path p;
        p.nodes.push_back(src);
        out.push_back(std::move(p));
        return out;
    }
    const std::vector<int> lvl = maskedLevels(src);
    if (lvl[static_cast<std::size_t>(dst)] < 0)
        return out;

    // Depth-first enumeration along strictly level-increasing live
    // links, in adjacency order: deterministic regardless of which
    // faults produced the mask.
    std::vector<NodeId> nodes{src};
    std::function<void(NodeId)> walk = [&](NodeId u) {
        if (maxPaths != 0 && out.size() >= maxPaths)
            return;
        if (u == dst) {
            out.push_back(makePath(nodes));
            return;
        }
        for (LinkId l : linksAt(u)) {
            if (!linkUp(l))
                continue;
            const NodeId v = link(l).other(u);
            if (!nodeUp(v))
                continue;
            if (lvl[static_cast<std::size_t>(v)] !=
                lvl[static_cast<std::size_t>(u)] + 1)
                continue;
            nodes.push_back(v);
            walk(v);
            nodes.pop_back();
            if (maxPaths != 0 && out.size() >= maxPaths)
                return;
        }
    };
    walk(src);
    return out;
}

bool
Topology::linkUp(LinkId l) const
{
    SRSIM_ASSERT(l >= 0 && l < numLinks(), "bad link id ", l);
    return !degraded_ || linkUp_[static_cast<std::size_t>(l)] != 0;
}

bool
Topology::nodeUp(NodeId n) const
{
    checkNode(n);
    return !degraded_ || nodeUp_[static_cast<std::size_t>(n)] != 0;
}

double
Topology::linkCapacity(LinkId l) const
{
    SRSIM_ASSERT(l >= 0 && l < numLinks(), "bad link id ", l);
    if (!degraded_)
        return 1.0;
    if (linkUp_[static_cast<std::size_t>(l)] == 0)
        return 0.0;
    return linkCap_[static_cast<std::size_t>(l)];
}

int
Topology::numLiveLinks() const
{
    if (!degraded_)
        return numLinks();
    int n = 0;
    for (LinkId l = 0; l < numLinks(); ++l)
        if (linkUp_[static_cast<std::size_t>(l)] != 0)
            ++n;
    return n;
}

void
Topology::failLink(LinkId l)
{
    SRSIM_ASSERT(l >= 0 && l < numLinks(), "bad link id ", l);
    ensureMask();
    linkUp_[static_cast<std::size_t>(l)] = 0;
}

void
Topology::failNode(NodeId n)
{
    checkNode(n);
    ensureMask();
    nodeUp_[static_cast<std::size_t>(n)] = 0;
    for (LinkId l : linksAt(n))
        linkUp_[static_cast<std::size_t>(l)] = 0;
}

void
Topology::derateLink(LinkId l, double f)
{
    SRSIM_ASSERT(l >= 0 && l < numLinks(), "bad link id ", l);
    SRSIM_ASSERT(f > 0.0 && f <= 1.0, "derate factor ", f,
                 " outside (0,1]");
    ensureMask();
    linkCap_[static_cast<std::size_t>(l)] = f;
}

void
Topology::clearFaults()
{
    degraded_ = false;
    linkUp_.clear();
    nodeUp_.clear();
    linkCap_.clear();
}

void
Topology::ensureMask()
{
    if (degraded_)
        return;
    degraded_ = true;
    linkUp_.assign(static_cast<std::size_t>(numLinks()), 1);
    nodeUp_.assign(static_cast<std::size_t>(numNodes()), 1);
    linkCap_.assign(static_cast<std::size_t>(numLinks()), 1.0);
}

bool
Topology::pathAlive(const Path &p) const
{
    if (!validPath(p))
        return false;
    if (!degraded_)
        return true;
    for (NodeId n : p.nodes)
        if (!nodeUp(n))
            return false;
    for (LinkId l : p.links)
        if (!linkUp(l))
            return false;
    return true;
}

Path
Topology::makePath(const std::vector<NodeId> &nodes) const
{
    Path p;
    p.nodes = nodes;
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
        LinkId l = linkBetween(nodes[i], nodes[i + 1]);
        SRSIM_ASSERT(l != kInvalidLink, "nodes ", nodes[i], " and ",
                     nodes[i + 1], " are not adjacent in ", name());
        p.links.push_back(l);
    }
    return p;
}

bool
Topology::validPath(const Path &p) const
{
    if (p.nodes.empty())
        return false;
    if (p.links.size() + 1 != p.nodes.size())
        return false;
    for (std::size_t i = 0; i < p.links.size(); ++i) {
        if (p.links[i] < 0 || p.links[i] >= numLinks())
            return false;
        const Link &lk = link(p.links[i]);
        const NodeId u = p.nodes[i];
        const NodeId v = p.nodes[i + 1];
        if (!((lk.a == u && lk.b == v) || (lk.a == v && lk.b == u)))
            return false;
    }
    return true;
}

void
Topology::setNumNodes(int n)
{
    SRSIM_ASSERT(n > 0, "topology must have at least one node");
    adjacency_.assign(static_cast<std::size_t>(n), {});
}

void
Topology::addLink(NodeId a, NodeId b)
{
    checkNode(a);
    checkNode(b);
    SRSIM_ASSERT(a != b, "self-link at node ", a);
    if (linkBetween(a, b) != kInvalidLink)
        return; // coalesce duplicates (radix-2 wraparound)
    const LinkId id = static_cast<LinkId>(links_.size());
    links_.push_back(Link{id, a, b});
    adjacency_[static_cast<std::size_t>(a)].push_back(id);
    adjacency_[static_cast<std::size_t>(b)].push_back(id);
}

void
Topology::checkNode(NodeId n) const
{
    SRSIM_ASSERT(n >= 0 && n < numNodes(), "bad node id ", n);
}

} // namespace srsim
