#include "topology/mesh.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace srsim {

Mesh::Mesh(std::vector<int> radices)
    : addr_(std::move(radices))
{
    setNumNodes(addr_.size());
    const int n = addr_.size();
    for (NodeId u = 0; u < n; ++u) {
        std::vector<int> du = addr_.toDigits(u);
        for (std::size_t d = 0; d < addr_.dims(); ++d) {
            if (du[d] + 1 >= addr_.radix(d))
                continue;
            std::vector<int> dv = du;
            dv[d] = du[d] + 1;
            addLink(u, addr_.toId(dv));
        }
    }
}

std::string
Mesh::name() const
{
    std::string s;
    for (std::size_t i = addr_.dims(); i-- > 0;) {
        s += std::to_string(addr_.radix(i));
        if (i != 0)
            s += "x";
    }
    return s + " mesh";
}

int
Mesh::distanceImpl(NodeId src, NodeId dst) const
{
    checkNode(src);
    checkNode(dst);
    const auto a = addr_.toDigits(src);
    const auto b = addr_.toDigits(dst);
    int d = 0;
    for (std::size_t i = 0; i < addr_.dims(); ++i)
        d += std::abs(a[i] - b[i]);
    return d;
}

void
Mesh::enumerate(std::vector<int> cur, std::vector<Walk> walks,
                std::vector<NodeId> &nodes, std::size_t maxPaths,
                std::vector<Path> &out) const
{
    if (maxPaths != 0 && out.size() >= maxPaths)
        return;
    bool done = true;
    for (const Walk &w : walks)
        done = done && w.left == 0;
    if (done) {
        out.push_back(makePath(nodes));
        return;
    }
    for (std::size_t i = 0; i < walks.size(); ++i) {
        if (walks[i].left == 0)
            continue;
        const std::size_t d = walks[i].dim;
        const int saved = cur[d];
        cur[d] += walks[i].dir;
        nodes.push_back(addr_.toId(cur));
        --walks[i].left;
        enumerate(cur, walks, nodes, maxPaths, out);
        ++walks[i].left;
        nodes.pop_back();
        cur[d] = saved;
        if (maxPaths != 0 && out.size() >= maxPaths)
            return;
    }
}

std::vector<Path>
Mesh::minimalPathsImpl(NodeId src, NodeId dst, std::size_t maxPaths) const
{
    checkNode(src);
    checkNode(dst);
    const auto a = addr_.toDigits(src);
    const auto b = addr_.toDigits(dst);
    std::vector<Walk> walks;
    for (std::size_t d = 0; d < addr_.dims(); ++d) {
        const int delta = b[d] - a[d];
        if (delta != 0)
            walks.push_back(Walk{d, delta > 0 ? +1 : -1,
                                 std::abs(delta)});
    }
    std::vector<Path> out;
    std::vector<NodeId> nodes{src};
    enumerate(a, std::move(walks), nodes, maxPaths, out);
    if (out.empty())
        out.push_back(makePath({src}));
    return out;
}

Path
Mesh::routeLsdToMsdImpl(NodeId src, NodeId dst) const
{
    checkNode(src);
    checkNode(dst);
    auto cur = addr_.toDigits(src);
    const auto target = addr_.toDigits(dst);
    std::vector<NodeId> nodes{src};
    for (std::size_t d = 0; d < addr_.dims(); ++d) {
        while (cur[d] != target[d]) {
            cur[d] += target[d] > cur[d] ? 1 : -1;
            nodes.push_back(addr_.toId(cur));
        }
    }
    return makePath(nodes);
}

} // namespace srsim
