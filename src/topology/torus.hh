/**
 * @file
 * k-ary n-dimensional torus topology.
 *
 * Nodes carry mixed-radix addresses; two nodes are adjacent iff their
 * addresses differ by +-1 (mod k_d) in exactly one dimension d. The
 * 8x8 and 4x4x4 tori of the paper's evaluation are instances.
 *
 * Minimal paths: per dimension the offset is walked in the shorter
 * wrap direction (both directions when the offset is exactly half the
 * radix); a minimal path is any interleaving of the per-dimension
 * step sequences.
 */

#ifndef SRSIM_TOPOLOGY_TORUS_HH_
#define SRSIM_TOPOLOGY_TORUS_HH_

#include <string>
#include <vector>

#include "topology/mixed_radix.hh"
#include "topology/topology.hh"

namespace srsim {

/** k-ary n-dimensional torus interconnect. */
class Torus : public Topology
{
  public:
    /** @param radices per-dimension extent, dimension 0 (LSD) first */
    explicit Torus(std::vector<int> radices);

    std::string name() const override;

    const MixedRadix &addressing() const { return addr_; }

  protected:
    int distanceImpl(NodeId src, NodeId dst) const override;

    std::vector<Path>
    minimalPathsImpl(NodeId src, NodeId dst,
                     std::size_t maxPaths) const override;

    Path routeLsdToMsdImpl(NodeId src, NodeId dst) const override;

  private:
    /** Per-dimension shortest-direction decomposition of an offset. */
    struct DimMove
    {
        std::size_t dim;
        int steps;      ///< number of unit hops
        int dir;        ///< +1 or -1
        bool tie;       ///< both directions minimal (offset == k/2)
    };

    std::vector<DimMove> moves(NodeId src, NodeId dst) const;

    /** One in-progress dimension walk during path enumeration. */
    struct Walk
    {
        std::size_t dim;
        int dir;
        int left;
    };

    void
    enumerate(std::vector<int> cur, std::vector<Walk> walks,
              std::vector<NodeId> &nodes, std::size_t maxPaths,
              std::vector<Path> &out) const;

    MixedRadix addr_;
};

} // namespace srsim

#endif // SRSIM_TOPOLOGY_TORUS_HH_
