/**
 * @file
 * Generalized hypercube topology [Agr86 / Bhuyan-Agrawal].
 *
 * A GHC(m_{r-1}, ..., m_0) has one node per mixed-radix address; two
 * nodes are adjacent iff their addresses differ in exactly one digit
 * (each dimension is a complete graph among the m_i digit values).
 * The binary r-cube is the special case of all radices equal to 2.
 *
 * Any digit can be corrected in a single hop, so the hop distance is
 * the number of differing digits and the minimal paths are exactly
 * the orderings in which the differing dimensions are corrected.
 */

#ifndef SRSIM_TOPOLOGY_GENERALIZED_HYPERCUBE_HH_
#define SRSIM_TOPOLOGY_GENERALIZED_HYPERCUBE_HH_

#include <string>
#include <vector>

#include "topology/mixed_radix.hh"
#include "topology/topology.hh"

namespace srsim {

/** Generalized hypercube interconnect. */
class GeneralizedHypercube : public Topology
{
  public:
    /** @param radices per-dimension radix, dimension 0 (LSD) first */
    explicit GeneralizedHypercube(std::vector<int> radices);

    /** Convenience: binary n-cube. */
    static GeneralizedHypercube binaryCube(int dimensions);

    std::string name() const override;

    const MixedRadix &addressing() const { return addr_; }

  protected:
    int distanceImpl(NodeId src, NodeId dst) const override;

    std::vector<Path>
    minimalPathsImpl(NodeId src, NodeId dst,
                     std::size_t maxPaths) const override;

    Path routeLsdToMsdImpl(NodeId src, NodeId dst) const override;

  private:
    void
    enumerate(std::vector<int> cur, const std::vector<int> &dst,
              std::vector<std::size_t> remaining_dims,
              std::vector<NodeId> &nodes, std::size_t maxPaths,
              std::vector<Path> &out) const;

    MixedRadix addr_;
};

} // namespace srsim

#endif // SRSIM_TOPOLOGY_GENERALIZED_HYPERCUBE_HH_
