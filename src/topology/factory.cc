#include "topology/factory.hh"

#include <algorithm>
#include <sstream>

#include "topology/generalized_hypercube.hh"
#include "topology/mesh.hh"
#include "topology/torus.hh"
#include "util/logging.hh"

namespace srsim {

namespace {

/** Parse "A,B,C" (MSD first) into LSD-first radices. */
std::vector<int>
parseRadices(const std::string &list)
{
    std::vector<int> out;
    std::istringstream ls(list);
    std::string item;
    while (std::getline(ls, item, ',')) {
        if (item.empty())
            fatal("empty dimension in topology spec '", list, "'");
        int v = 0;
        try {
            v = std::stoi(item);
        } catch (const std::exception &) {
            fatal("bad dimension '", item, "' in topology spec");
        }
        if (v < 2)
            fatal("dimension extents must be >= 2, got ", v);
        out.push_back(v);
    }
    if (out.empty())
        fatal("topology spec lists no dimensions");
    std::reverse(out.begin(), out.end()); // to LSD-first
    return out;
}

} // namespace

std::unique_ptr<Topology>
makeTopology(const std::string &spec)
{
    const auto colon = spec.find(':');
    if (colon == std::string::npos)
        fatal("topology spec '", spec,
              "' must look like kind:dims (e.g. torus:8,8)");
    const std::string kind = spec.substr(0, colon);
    const std::string dims = spec.substr(colon + 1);

    if (kind == "cube") {
        int n = 0;
        try {
            n = std::stoi(dims);
        } catch (const std::exception &) {
            fatal("bad cube dimension '", dims, "'");
        }
        if (n < 1)
            fatal("cube dimension must be >= 1");
        return std::make_unique<GeneralizedHypercube>(
            GeneralizedHypercube::binaryCube(n));
    }
    if (kind == "ghc")
        return std::make_unique<GeneralizedHypercube>(
            parseRadices(dims));
    if (kind == "torus")
        return std::make_unique<Torus>(parseRadices(dims));
    if (kind == "mesh")
        return std::make_unique<Mesh>(parseRadices(dims));
    fatal("unknown topology kind '", kind,
          "' (use cube, ghc, torus, or mesh)");
}

} // namespace srsim
