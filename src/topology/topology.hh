/**
 * @file
 * Abstract interconnect topology with bidirectional half-duplex links.
 *
 * The paper evaluates generalized hypercubes and tori; both derive
 * from this base, which owns the node/link tables and provides
 * generic breadth-first helpers. Links are *undirected* resources: a
 * link carries one message at a time regardless of direction, exactly
 * as in the paper's half-duplex channel model.
 */

#ifndef SRSIM_TOPOLOGY_TOPOLOGY_HH_
#define SRSIM_TOPOLOGY_TOPOLOGY_HH_

#include <cstddef>
#include <string>
#include <vector>

#include "topology/path.hh"

namespace srsim {

/** One undirected half-duplex channel between adjacent nodes. */
struct Link
{
    LinkId id = kInvalidLink;
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;

    /** @return the endpoint that is not `n`. */
    NodeId
    other(NodeId n) const
    {
        return n == a ? b : a;
    }
};

/**
 * Base class for interconnection networks.
 *
 * Construction protocol for subclasses: call setNumNodes(), addLink()
 * for every channel, then finalize(). Duplicate links between the
 * same unordered node pair are coalesced (relevant for radix-2 tori,
 * where +1 and -1 neighbours coincide).
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** @return short human-readable name, e.g. "GHC(4,4,4)". */
    virtual std::string name() const = 0;

    int numNodes() const { return static_cast<int>(adjacency_.size()); }
    int numLinks() const { return static_cast<int>(links_.size()); }

    const Link &link(LinkId id) const;

    /** All links incident to node n. */
    const std::vector<LinkId> &linksAt(NodeId n) const;

    /** Neighbour nodes of n (one per incident link). */
    std::vector<NodeId> neighborsOf(NodeId n) const;

    /** @return link id between a and b, or kInvalidLink. */
    LinkId linkBetween(NodeId a, NodeId b) const;

    bool
    adjacent(NodeId a, NodeId b) const
    {
        return linkBetween(a, b) != kInvalidLink;
    }

    int degree(NodeId n) const
    {
        return static_cast<int>(linksAt(n).size());
    }

    /**
     * Hop distance between two nodes over the *surviving* fabric.
     * On a healthy topology this dispatches to the subclass's
     * analytic distance; on a degraded one it runs a masked BFS.
     * Panics when src and dst are disconnected (same contract in
     * both modes).
     */
    int distance(NodeId src, NodeId dst) const;

    /**
     * Enumerate minimal (shortest) paths from src to dst over the
     * surviving fabric. Healthy topologies use the subclass's
     * analytic enumeration; degraded ones enumerate shortest paths
     * by masked BFS, skipping failed links and nodes. Returns an
     * empty vector when the pair is disconnected by faults.
     * @param maxPaths cap on the number of paths returned (0 = no cap)
     */
    std::vector<Path>
    minimalPaths(NodeId src, NodeId dst, std::size_t maxPaths = 0)
        const;

    /**
     * The deterministic routing-function path, correcting the address
     * from least-significant dimension to most-significant (the
     * "LSD-to-MSD" route of Sec. 5.1; e-cube / dimension-order).
     * On a degraded topology, falls back to the first masked minimal
     * path when the analytic route crosses a failed resource, and
     * returns an empty Path when disconnected.
     */
    Path routeLsdToMsd(NodeId src, NodeId dst) const;

    /**
     * Build a Path from a node sequence, resolving link ids.
     * Purely structural (ignores the fault mask). Panics if
     * consecutive nodes are not adjacent.
     */
    Path makePath(const std::vector<NodeId> &nodes) const;

    /**
     * @return true if p is a contiguous route with valid link ids.
     * Purely structural; use pathAlive() for fault-mask liveness.
     */
    bool validPath(const Path &p) const;

    // ---- fault mask -------------------------------------------------
    //
    // Links and nodes can be failed (removed from the surviving
    // fabric) or links derated (capacity reduced to a duty-cycle
    // fraction f in (0,1]). The structural tables are never mutated;
    // the mask only changes what the routing queries above return and
    // what pathAlive()/linkCapacity() report.

    /** @return true once any fault has been applied. */
    bool degraded() const { return degraded_; }

    /** @return true if link l has not been failed. */
    bool linkUp(LinkId l) const;

    /** @return true if node n has not been failed. */
    bool nodeUp(NodeId n) const;

    /**
     * Duty-cycle capacity of link l: 1 when healthy, f in (0,1) when
     * derated, 0 when failed.
     */
    double linkCapacity(LinkId l) const;

    /** Number of links still up. */
    int numLiveLinks() const;

    /** Remove link l from the surviving fabric. */
    void failLink(LinkId l);

    /** Remove node n and all its incident links. */
    void failNode(NodeId n);

    /** Derate link l to duty-cycle fraction f in (0,1]. */
    void derateLink(LinkId l, double f);

    /** Restore the healthy fabric (all links/nodes up, capacity 1). */
    void clearFaults();

    /**
     * @return true if every node and link of p survives the fault
     * mask (p must also be structurally valid).
     */
    bool pathAlive(const Path &p) const;

  protected:
    void setNumNodes(int n);
    void addLink(NodeId a, NodeId b);
    void checkNode(NodeId n) const;

    /** Analytic hop distance on the *healthy* fabric. Default: BFS. */
    virtual int distanceImpl(NodeId src, NodeId dst) const;

    /** Analytic minimal-path enumeration on the healthy fabric. */
    virtual std::vector<Path>
    minimalPathsImpl(NodeId src, NodeId dst,
                     std::size_t maxPaths) const = 0;

    /** Analytic LSD-to-MSD route on the healthy fabric. */
    virtual Path routeLsdToMsdImpl(NodeId src, NodeId dst) const = 0;

  private:
    /** Lazily allocate the mask arrays on the first fault. */
    void ensureMask();

    /** BFS levels over the surviving fabric; -1 = unreachable. */
    std::vector<int> maskedLevels(NodeId src) const;

    std::vector<Path>
    maskedMinimalPaths(NodeId src, NodeId dst,
                       std::size_t maxPaths) const;

    std::vector<Link> links_;
    std::vector<std::vector<LinkId>> adjacency_;
    std::vector<char> linkUp_;
    std::vector<char> nodeUp_;
    std::vector<double> linkCap_;
    bool degraded_ = false;
};

} // namespace srsim

#endif // SRSIM_TOPOLOGY_TOPOLOGY_HH_
