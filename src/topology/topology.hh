/**
 * @file
 * Abstract interconnect topology with bidirectional half-duplex links.
 *
 * The paper evaluates generalized hypercubes and tori; both derive
 * from this base, which owns the node/link tables and provides
 * generic breadth-first helpers. Links are *undirected* resources: a
 * link carries one message at a time regardless of direction, exactly
 * as in the paper's half-duplex channel model.
 */

#ifndef SRSIM_TOPOLOGY_TOPOLOGY_HH_
#define SRSIM_TOPOLOGY_TOPOLOGY_HH_

#include <cstddef>
#include <string>
#include <vector>

#include "topology/path.hh"

namespace srsim {

/** One undirected half-duplex channel between adjacent nodes. */
struct Link
{
    LinkId id = kInvalidLink;
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;

    /** @return the endpoint that is not `n`. */
    NodeId
    other(NodeId n) const
    {
        return n == a ? b : a;
    }
};

/**
 * Base class for interconnection networks.
 *
 * Construction protocol for subclasses: call setNumNodes(), addLink()
 * for every channel, then finalize(). Duplicate links between the
 * same unordered node pair are coalesced (relevant for radix-2 tori,
 * where +1 and -1 neighbours coincide).
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** @return short human-readable name, e.g. "GHC(4,4,4)". */
    virtual std::string name() const = 0;

    int numNodes() const { return static_cast<int>(adjacency_.size()); }
    int numLinks() const { return static_cast<int>(links_.size()); }

    const Link &link(LinkId id) const;

    /** All links incident to node n. */
    const std::vector<LinkId> &linksAt(NodeId n) const;

    /** Neighbour nodes of n (one per incident link). */
    std::vector<NodeId> neighborsOf(NodeId n) const;

    /** @return link id between a and b, or kInvalidLink. */
    LinkId linkBetween(NodeId a, NodeId b) const;

    bool
    adjacent(NodeId a, NodeId b) const
    {
        return linkBetween(a, b) != kInvalidLink;
    }

    int degree(NodeId n) const
    {
        return static_cast<int>(linksAt(n).size());
    }

    /** Hop distance between two nodes. Default: BFS. */
    virtual int distance(NodeId src, NodeId dst) const;

    /**
     * Enumerate minimal (shortest) paths from src to dst.
     * @param maxPaths cap on the number of paths returned (0 = no cap)
     */
    virtual std::vector<Path>
    minimalPaths(NodeId src, NodeId dst, std::size_t maxPaths = 0)
        const = 0;

    /**
     * The deterministic routing-function path, correcting the address
     * from least-significant dimension to most-significant (the
     * "LSD-to-MSD" route of Sec. 5.1; e-cube / dimension-order).
     */
    virtual Path routeLsdToMsd(NodeId src, NodeId dst) const = 0;

    /**
     * Build a Path from a node sequence, resolving link ids.
     * Panics if consecutive nodes are not adjacent.
     */
    Path makePath(const std::vector<NodeId> &nodes) const;

    /** @return true if p is a contiguous route with valid link ids. */
    bool validPath(const Path &p) const;

  protected:
    void setNumNodes(int n);
    void addLink(NodeId a, NodeId b);
    void checkNode(NodeId n) const;

  private:
    std::vector<Link> links_;
    std::vector<std::vector<LinkId>> adjacency_;
};

} // namespace srsim

#endif // SRSIM_TOPOLOGY_TOPOLOGY_HH_
