/**
 * @file
 * Topology factory: build a fabric from a compact spec string.
 *
 * Specs (dimension extents MSD-first, as printed by name()):
 *   cube:N        binary N-cube
 *   ghc:A,B,...   generalized hypercube GHC(A,B,...)
 *   torus:A,B,... torus
 *   mesh:A,B,...  mesh
 *
 * Used by the srsimc command-line tool and by parameterized tests.
 */

#ifndef SRSIM_TOPOLOGY_FACTORY_HH_
#define SRSIM_TOPOLOGY_FACTORY_HH_

#include <memory>
#include <string>

#include "topology/topology.hh"

namespace srsim {

/**
 * Build a topology from a spec string.
 * Fatal on malformed specs.
 */
std::unique_ptr<Topology> makeTopology(const std::string &spec);

} // namespace srsim

#endif // SRSIM_TOPOLOGY_FACTORY_HH_
