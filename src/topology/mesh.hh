/**
 * @file
 * n-dimensional mesh topology (torus without wraparound).
 *
 * Not part of the paper's evaluation; provided as an additional
 * fabric for the extension experiments and examples.
 */

#ifndef SRSIM_TOPOLOGY_MESH_HH_
#define SRSIM_TOPOLOGY_MESH_HH_

#include <string>
#include <vector>

#include "topology/mixed_radix.hh"
#include "topology/topology.hh"

namespace srsim {

/** n-dimensional mesh interconnect. */
class Mesh : public Topology
{
  public:
    /** @param radices per-dimension extent, dimension 0 (LSD) first */
    explicit Mesh(std::vector<int> radices);

    std::string name() const override;

    const MixedRadix &addressing() const { return addr_; }

  protected:
    int distanceImpl(NodeId src, NodeId dst) const override;

    std::vector<Path>
    minimalPathsImpl(NodeId src, NodeId dst,
                     std::size_t maxPaths) const override;

    Path routeLsdToMsdImpl(NodeId src, NodeId dst) const override;

  private:
    /** One in-progress dimension walk during path enumeration. */
    struct Walk
    {
        std::size_t dim;
        int dir;
        int left;
    };

    void
    enumerate(std::vector<int> cur, std::vector<Walk> walks,
              std::vector<NodeId> &nodes, std::size_t maxPaths,
              std::vector<Path> &out) const;

    MixedRadix addr_;
};

} // namespace srsim

#endif // SRSIM_TOPOLOGY_MESH_HH_
