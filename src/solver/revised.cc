/**
 * @file
 * Sparse revised simplex implementation. See revised.hh for the
 * contract; the organizing constraint throughout is that the *cold*
 * path replicates the dense tableau solver's pivot rules (standard
 * form layout, pricing, ratio test, tolerances, stall handling)
 * decision for decision, so the two trace the same vertex sequence
 * on the golden corpus. The warm path is new behavior and is gated
 * by the fallback ladder instead.
 */

#include "solver/revised.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "metrics/metrics.hh"
#include "util/logging.hh"

namespace srsim {
namespace lp {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/**
 * The problem in standard equality form, stored column-wise.
 *
 * Column order matches the dense tableau exactly: structural
 * variables, then one slack/surplus per non-equality row (in row
 * order), then one artificial per non-LessEq row (in row order).
 * Rows are sign-normalized to non-negative RHS, flipping the
 * relation sense, exactly like the dense RowPlan.
 */
struct StdForm
{
    std::size_t m = 0;
    std::size_t n_struct = 0;
    std::size_t n_slack = 0;
    std::size_t n_art = 0;
    std::size_t n_total = 0;

    /** Sparse columns: (row, coefficient), rows ascending. */
    std::vector<std::vector<std::pair<std::size_t, double>>> cols;
    /** Normalized RHS per row. */
    std::vector<double> b;
    /** Normalized relation per row. */
    std::vector<Relation> rel;
    /** Owning row's |rhs| per artificial ordinal (dense
     *  art_scales). */
    std::vector<double> art_scales;
    /** Column of row r's slack/surplus (kNone for Equal rows). */
    std::vector<std::size_t> slack_col_of_row;
    /** Column of row r's artificial (kNone for LessEq rows). */
    std::vector<std::size_t> art_col_of_row;
    /** Row owning each slack / artificial ordinal. */
    std::vector<std::size_t> row_of_slack;
    std::vector<std::size_t> row_of_art;
    /** Phase-2 costs per column (structural costs, else 0). */
    std::vector<double> c2;
    /** Phase-1 costs per column (1 on artificials, else 0). */
    std::vector<double> c1;

    bool isArt(std::size_t col) const
    {
        return col >= n_struct + n_slack;
    }
};

StdForm
buildStdForm(const Problem &p)
{
    StdForm sf;
    sf.m = p.numConstraints();
    sf.n_struct = p.numVariables();
    sf.b.resize(sf.m);
    sf.rel.resize(sf.m);
    sf.slack_col_of_row.assign(sf.m, kNone);
    sf.art_col_of_row.assign(sf.m, kNone);

    // Pass 1: normalize senses, count slack/artificial columns.
    for (std::size_t i = 0; i < sf.m; ++i) {
        const Constraint &c = p.constraints()[i];
        Relation rel = c.rel;
        if (c.rhs < 0.0) {
            if (rel == Relation::LessEq)
                rel = Relation::GreaterEq;
            else if (rel == Relation::GreaterEq)
                rel = Relation::LessEq;
        }
        sf.rel[i] = rel;
        if (rel != Relation::Equal)
            ++sf.n_slack;
        if (rel != Relation::LessEq)
            ++sf.n_art;
    }
    sf.n_total = sf.n_struct + sf.n_slack + sf.n_art;
    sf.cols.resize(sf.n_total);
    sf.row_of_slack.reserve(sf.n_slack);
    sf.row_of_art.reserve(sf.n_art);
    sf.art_scales.reserve(sf.n_art);

    // Pass 2: fill columns. Duplicate variable references within a
    // row accumulate in term order, matching the dense `+=` into a
    // tableau cell.
    std::size_t slack_col = sf.n_struct;
    std::size_t art_col = sf.n_struct + sf.n_slack;
    std::vector<double> row_acc(sf.n_struct, 0.0);
    std::vector<std::size_t> touched;
    for (std::size_t i = 0; i < sf.m; ++i) {
        const Constraint &c = p.constraints()[i];
        const double sign = c.rhs < 0.0 ? -1.0 : 1.0;
        touched.clear();
        for (const auto &[idx, coeff] : c.terms) {
            if (row_acc[idx] == 0.0)
                touched.push_back(idx);
            row_acc[idx] += sign * coeff;
        }
        std::sort(touched.begin(), touched.end());
        for (std::size_t idx : touched) {
            if (row_acc[idx] != 0.0)
                sf.cols[idx].emplace_back(i, row_acc[idx]);
            row_acc[idx] = 0.0;
        }
        sf.b[i] = sign * c.rhs;

        switch (sf.rel[i]) {
          case Relation::LessEq:
            sf.cols[slack_col].emplace_back(i, 1.0);
            sf.slack_col_of_row[i] = slack_col;
            sf.row_of_slack.push_back(i);
            ++slack_col;
            break;
          case Relation::GreaterEq:
            sf.cols[slack_col].emplace_back(i, -1.0);
            sf.slack_col_of_row[i] = slack_col;
            sf.row_of_slack.push_back(i);
            ++slack_col;
            sf.cols[art_col].emplace_back(i, 1.0);
            sf.art_col_of_row[i] = art_col;
            sf.row_of_art.push_back(i);
            sf.art_scales.push_back(std::abs(c.rhs));
            ++art_col;
            break;
          case Relation::Equal:
            sf.cols[art_col].emplace_back(i, 1.0);
            sf.art_col_of_row[i] = art_col;
            sf.row_of_art.push_back(i);
            sf.art_scales.push_back(std::abs(c.rhs));
            ++art_col;
            break;
        }
    }

    sf.c2.assign(sf.n_total, 0.0);
    for (std::size_t i = 0; i < sf.n_struct; ++i)
        sf.c2[i] = p.costs()[i];
    sf.c1.assign(sf.n_total, 0.0);
    for (std::size_t c = sf.n_struct + sf.n_slack; c < sf.n_total;
         ++c)
        sf.c1[c] = 1.0;
    return sf;
}

/**
 * Revised simplex working state: an explicit dense basis inverse
 * (column-major: binv_[k*m + i] = B^-1(i,k)), the basic column per
 * row, basic values x_B, and the phase objective value maintained
 * with the same incremental updates the dense tableau applies to its
 * objective cell.
 */
class Rev
{
  public:
    Rev(const StdForm &sf, const SolveOptions &opts)
        : sf_(sf), opts_(opts), m_(sf.m)
    {}

    /** Install the all-slack/artificial starting basis, B^-1 = I. */
    void
    initCold()
    {
        basis_.resize(m_);
        isBasic_.assign(sf_.n_total, false);
        for (std::size_t r = 0; r < m_; ++r) {
            const std::size_t c = sf_.rel[r] == Relation::LessEq
                                      ? sf_.slack_col_of_row[r]
                                      : sf_.art_col_of_row[r];
            basis_[r] = c;
            isBasic_[c] = true;
        }
        binv_.assign(m_ * m_, 0.0);
        for (std::size_t i = 0; i < m_; ++i)
            binv_[i * m_ + i] = 1.0;
        xB_ = sf_.b;
        objv_ = 0.0;
        budget_ = opts_.maxIterations;
        bland_ = false;
        pivots_ = 0;
    }

    /**
     * Resolve a symbolic warm-start basis against this problem.
     * Rows beyond the snapshot (a child appended constraints) get
     * their natural slack/artificial basic. @return false when an
     * entry does not exist in this problem's standard form.
     */
    bool
    resolveWarm(const Basis &wb)
    {
        if (wb.structurals != sf_.n_struct ||
            wb.rows.size() > m_)
            return false;
        basis_.assign(m_, kNone);
        isBasic_.assign(sf_.n_total, false);
        for (std::size_t r = 0; r < m_; ++r) {
            std::size_t col = kNone;
            if (r < wb.rows.size()) {
                const Basis::Entry &e = wb.rows[r];
                switch (e.kind) {
                  case Basis::Kind::Structural:
                    if (e.index < sf_.n_struct)
                        col = e.index;
                    break;
                  case Basis::Kind::Slack:
                    if (e.index < m_)
                        col = sf_.slack_col_of_row[e.index];
                    break;
                  case Basis::Kind::Artificial:
                    if (e.index < m_)
                        col = sf_.art_col_of_row[e.index];
                    break;
                }
            } else {
                col = sf_.rel[r] == Relation::Equal
                          ? sf_.art_col_of_row[r]
                          : sf_.slack_col_of_row[r];
            }
            if (col == kNone || isBasic_[col])
                return false;
            basis_[r] = col;
            isBasic_[col] = true;
        }
        budget_ = opts_.maxIterations;
        bland_ = false;
        pivots_ = 0;
        return true;
    }

    /**
     * Factorize the current basis: B^-1 by Gauss-Jordan with partial
     * pivoting, then x_B = B^-1 b. @return false on a (numerically)
     * singular basis.
     */
    bool
    factorize()
    {
        // aug = [B | I] stored row-major, eliminated in place.
        const std::size_t w = 2 * m_;
        std::vector<double> aug(m_ * w, 0.0);
        for (std::size_t r = 0; r < m_; ++r)
            aug[r * w + m_ + r] = 1.0;
        for (std::size_t k = 0; k < m_; ++k)
            for (const auto &[r, v] : sf_.cols[basis_[k]])
                aug[r * w + k] = v;

        double scale = 0.0;
        for (std::size_t i = 0; i < m_ * m_; ++i)
            scale = std::max(scale,
                             std::abs(aug[(i / m_) * w + i % m_]));
        const double tiny = 1e-12 * std::max(1.0, scale);

        for (std::size_t k = 0; k < m_; ++k) {
            std::size_t piv = k;
            for (std::size_t r = k + 1; r < m_; ++r)
                if (std::abs(aug[r * w + k]) >
                    std::abs(aug[piv * w + k]))
                    piv = r;
            const double pv = aug[piv * w + k];
            if (!std::isfinite(pv) || std::abs(pv) <= tiny)
                return false;
            if (piv != k)
                for (std::size_t c = 0; c < w; ++c)
                    std::swap(aug[k * w + c], aug[piv * w + c]);
            const double inv = 1.0 / pv;
            for (std::size_t c = 0; c < w; ++c)
                aug[k * w + c] *= inv;
            for (std::size_t r = 0; r < m_; ++r) {
                if (r == k)
                    continue;
                const double f = aug[r * w + k];
                if (f == 0.0)
                    continue;
                for (std::size_t c = 0; c < w; ++c)
                    aug[r * w + c] -= f * aug[k * w + c];
            }
        }
        binv_.assign(m_ * m_, 0.0);
        for (std::size_t i = 0; i < m_; ++i)
            for (std::size_t k = 0; k < m_; ++k)
                binv_[k * m_ + i] = aug[i * w + m_ + k];

        xB_.assign(m_, 0.0);
        for (std::size_t i = 0; i < m_; ++i) {
            double s = 0.0;
            for (std::size_t k = 0; k < m_; ++k)
                s += binv_[k * m_ + i] * sf_.b[k];
            xB_[i] = s;
            if (!std::isfinite(s))
                return false;
        }
        return true;
    }

    /** w = B^-1 a_col for a standard-form column. */
    void
    ftran(std::size_t col, std::vector<double> &w) const
    {
        w.assign(m_, 0.0);
        for (const auto &[r, v] : sf_.cols[col])
            for (std::size_t i = 0; i < m_; ++i)
                w[i] += v * binv_[r * m_ + i];
    }

    /** y = c_B^T B^-1 for the given phase cost vector. */
    void
    btran(const std::vector<double> &cost,
          std::vector<double> &y) const
    {
        y.assign(m_, 0.0);
        for (std::size_t k = 0; k < m_; ++k) {
            double s = 0.0;
            for (std::size_t i = 0; i < m_; ++i) {
                const double cb = cost[basis_[i]];
                if (cb != 0.0)
                    s += cb * binv_[k * m_ + i];
            }
            y[k] = s;
        }
    }

    /**
     * Reduced costs for every column. Basic and disallowed columns
     * are forced to exactly 0 (the dense tableau's objective row
     * holds exact zeros there by construction). @return false when
     * a non-finite value appeared.
     */
    bool
    price(const std::vector<double> &cost,
          const std::vector<bool> &allowed,
          std::vector<double> &y, std::vector<double> &d) const
    {
        btran(cost, y);
        d.assign(sf_.n_total, 0.0);
        bool ok = true;
        for (std::size_t j = 0; j < sf_.n_total; ++j) {
            if (!allowed[j] || isBasic_[j])
                continue;
            double s = cost[j];
            for (const auto &[r, v] : sf_.cols[j])
                s -= y[r] * v;
            d[j] = s;
            if (!std::isfinite(s))
                ok = false;
        }
        return ok;
    }

    /**
     * Apply one basis exchange: row `leave` leaves, column `enter`
     * (with ftran image `w`) enters. Arithmetic mirrors the dense
     * Tableau::pivot — scale the pivot row, then eliminate with the
     * same `f == 0` skip — plus the objective-cell update the dense
     * elimination applies via the objective row.
     *
     * @param d_enter the entering column's reduced cost (the dense
     *        objective-row entry) before the pivot
     * @return false when the pivot element fails the tolerance
     */
    bool
    pivot(std::size_t leave, std::size_t enter,
          const std::vector<double> &w, double tol, double d_enter)
    {
        const double pv = w[leave];
        if (!std::isfinite(pv) || !(std::abs(pv) > tol))
            return false;
        const double inv = 1.0 / pv;
        for (std::size_t k = 0; k < m_; ++k)
            binv_[k * m_ + leave] *= inv;
        xB_[leave] *= inv;
        for (std::size_t r = 0; r < m_; ++r) {
            if (r == leave)
                continue;
            const double f = w[r];
            if (f == 0.0)
                continue;
            for (std::size_t k = 0; k < m_; ++k)
                binv_[k * m_ + r] -= f * binv_[k * m_ + leave];
            xB_[r] -= f * xB_[leave];
        }
        if (d_enter != 0.0)
            objv_ -= d_enter * xB_[leave];
        isBasic_[basis_[leave]] = false;
        isBasic_[enter] = true;
        basis_[leave] = enter;
        return true;
    }

    /** Dense Tableau::finite() analogue: x_B and objective. */
    bool
    finiteState() const
    {
        if (!std::isfinite(objv_))
            return false;
        for (double v : xB_)
            if (!std::isfinite(v))
                return false;
        return true;
    }

    /**
     * Primal simplex to optimality; decision-for-decision replica of
     * the dense iterate() (Dantzig with sticky Bland, scaled
     * tolerances, same ratio tie-break on basis column index).
     */
    Status
    primalIterate(const std::vector<double> &cost,
                  const std::vector<bool> &allowed)
    {
        const double eps = opts_.eps;
        double last_obj = objv_;
        std::size_t stall = 0;
        const std::size_t stall_limit = m_ + 4;
        std::vector<double> y, d, w;

        while (true) {
            if (budget_ == 0)
                return Status::IterationLimit;

            if (!price(cost, allowed, y, d))
                return Status::NumericalFailure;
            double obj_scale = 1.0;
            for (std::size_t c = 0; c < sf_.n_total; ++c)
                if (allowed[c])
                    obj_scale = std::max(obj_scale,
                                         std::abs(d[c]));
            const double price_tol = eps * obj_scale;
            std::size_t enter = sf_.n_total;
            if (bland_) {
                for (std::size_t c = 0; c < sf_.n_total; ++c) {
                    if (allowed[c] && d[c] < -price_tol) {
                        enter = c;
                        break;
                    }
                }
            } else {
                double best = -price_tol;
                for (std::size_t c = 0; c < sf_.n_total; ++c) {
                    if (allowed[c] && d[c] < best) {
                        best = d[c];
                        enter = c;
                    }
                }
            }
            if (enter == sf_.n_total)
                return Status::Optimal;

            ftran(enter, w);
            double col_scale = 0.0;
            for (std::size_t r = 0; r < m_; ++r)
                col_scale = std::max(col_scale, std::abs(w[r]));
            const double col_tol = eps * std::max(1.0, col_scale);
            std::size_t leave = m_;
            double best_ratio =
                std::numeric_limits<double>::infinity();
            for (std::size_t r = 0; r < m_; ++r) {
                const double a = w[r];
                if (a > col_tol) {
                    const double ratio = xB_[r] / a;
                    if (ratio < best_ratio - eps ||
                        (ratio < best_ratio + eps &&
                         (leave == m_ ||
                          basis_[r] < basis_[leave]))) {
                        best_ratio = ratio;
                        leave = r;
                    }
                }
            }
            if (leave == m_)
                return Status::Unbounded;

            if (!pivot(leave, enter, w, col_tol * 1e-3,
                       d[enter]) ||
                !finiteState())
                return Status::NumericalFailure;
            --budget_;
            ++pivots_;

            if (std::abs(objv_ - last_obj) <
                eps * std::max(1.0, std::abs(last_obj))) {
                if (++stall > stall_limit)
                    bland_ = true;
            } else {
                stall = 0;
                last_obj = objv_;
            }
        }
    }

    /**
     * Dual simplex: restore primal feasibility from a dual-feasible
     * basis (the warm-start branch-and-bound case). Capped — a warm
     * start that needs more than ~4m exchanges is not worth
     * trusting over a cold solve.
     *
     * @return Optimal when primal feasibility was restored,
     *         Infeasible when a row certified infeasibility (the
     *         caller treats this as "fall back to cold" rather than
     *         a verdict), NumericalFailure / IterationLimit
     *         otherwise.
     */
    Status
    dualSimplex(const std::vector<double> &cost,
                const std::vector<bool> &allowed)
    {
        const double eps = opts_.eps;
        const std::size_t cap = m_ * 4 + 64;
        std::vector<double> y, d, w, alpha(sf_.n_total, 0.0);

        for (std::size_t it = 0; it < cap; ++it) {
            if (budget_ == 0)
                return Status::IterationLimit;

            // Leaving row: most negative basic value, tolerance
            // scaled to the row's RHS.
            std::size_t leave = m_;
            double most_neg = 0.0;
            for (std::size_t r = 0; r < m_; ++r) {
                const double tol =
                    opts_.feasTol *
                    std::max(std::abs(sf_.b[r]), opts_.feasFloor);
                if (xB_[r] < -tol && xB_[r] < most_neg) {
                    most_neg = xB_[r];
                    leave = r;
                }
            }
            if (leave == m_)
                return Status::Optimal; // primal feasible again

            if (!price(cost, allowed, y, d))
                return Status::NumericalFailure;

            // Pivot row alpha_j = (B^-1 A)_{leave,j}: row `leave`
            // of B^-1 dotted with each candidate column.
            double row_scale = 0.0;
            for (std::size_t j = 0; j < sf_.n_total; ++j) {
                alpha[j] = 0.0;
                if (!allowed[j] || isBasic_[j])
                    continue;
                double s = 0.0;
                for (const auto &[r, v] : sf_.cols[j])
                    s += binv_[r * m_ + leave] * v;
                alpha[j] = s;
                if (!std::isfinite(s))
                    return Status::NumericalFailure;
                row_scale = std::max(row_scale, std::abs(s));
            }
            const double alpha_tol =
                eps * std::max(1.0, row_scale);

            // Dual ratio test: min d_j / -alpha_j over alpha_j < 0,
            // ties to the lowest column index.
            std::size_t enter = sf_.n_total;
            double best_ratio =
                std::numeric_limits<double>::infinity();
            for (std::size_t j = 0; j < sf_.n_total; ++j) {
                if (!allowed[j] || isBasic_[j])
                    continue;
                if (alpha[j] < -alpha_tol) {
                    const double ratio = d[j] / -alpha[j];
                    if (ratio < best_ratio - eps) {
                        best_ratio = ratio;
                        enter = j;
                    }
                }
            }
            if (enter == sf_.n_total)
                return Status::Infeasible;

            ftran(enter, w);
            double col_scale = 0.0;
            for (std::size_t r = 0; r < m_; ++r)
                col_scale = std::max(col_scale, std::abs(w[r]));
            const double col_tol =
                eps * std::max(1.0, col_scale);
            if (!pivot(leave, enter, w, col_tol * 1e-3,
                       d[enter]) ||
                !finiteState())
                return Status::NumericalFailure;
            --budget_;
            ++pivots_;
        }
        return Status::IterationLimit;
    }

    /**
     * Cold two-phase solve, dense-identical. Fills `sol` with the
     * final verdict; pivots_ holds the count consumed here.
     */
    void
    cold(Solution &sol)
    {
        initCold();
        const double eps = opts_.eps;
        std::vector<bool> allowed(sf_.n_total, true);

        if (sf_.n_art > 0) {
            // Phase-1 objective value as the dense init computes
            // it: subtract each artificial-basic row's RHS in row
            // order.
            objv_ = 0.0;
            for (std::size_t r = 0; r < m_; ++r)
                if (sf_.isArt(basis_[r]))
                    objv_ -= xB_[r];

            Status st = primalIterate(sf_.c1, allowed);
            if (st == Status::IterationLimit ||
                st == Status::NumericalFailure) {
                sol.status = st;
                return;
            }
            // Per-row feasibility against the artificial's owning
            // constraint scale (dense art_scales semantics).
            for (std::size_t r = 0; r < m_; ++r) {
                const std::size_t bcol = basis_[r];
                if (!sf_.isArt(bcol))
                    continue;
                const double value = xB_[r];
                const double scale =
                    sf_.art_scales[bcol - sf_.n_struct -
                                   sf_.n_slack];
                if (value > opts_.feasTol *
                                std::max(scale,
                                         opts_.feasFloor)) {
                    sol.status = Status::Infeasible;
                    return;
                }
            }

            // Drive degenerate basic artificials out: first
            // structural/slack column with a usable entry in the
            // row, like the dense drive-out (uncounted pivots).
            std::vector<double> y1, d1, w;
            for (std::size_t r = 0; r < m_; ++r) {
                if (!sf_.isArt(basis_[r]))
                    continue;
                std::size_t piv = sf_.n_total;
                double piv_tol = eps;
                double piv_d = 0.0;
                std::vector<double> piv_w;
                for (std::size_t c = 0;
                     c < sf_.n_struct + sf_.n_slack; ++c) {
                    ftran(c, w);
                    double cs = 0.0;
                    for (std::size_t i = 0; i < m_; ++i)
                        cs = std::max(cs, std::abs(w[i]));
                    const double tol = eps * std::max(1.0, cs);
                    if (std::abs(w[r]) > tol) {
                        piv = c;
                        piv_tol = tol;
                        piv_w = w;
                        break;
                    }
                }
                if (piv != sf_.n_total) {
                    if (d1.empty() &&
                        !price(sf_.c1, allowed, y1, d1)) {
                        sol.status = Status::NumericalFailure;
                        return;
                    }
                    piv_d = isBasic_[piv] ? 0.0 : d1[piv];
                    if (!pivot(r, piv, piv_w, piv_tol * 1e-3,
                               piv_d)) {
                        sol.status = Status::NumericalFailure;
                        return;
                    }
                    d1.clear(); // basis changed; reprice if needed
                }
                // No pivot: redundant all-zero row, artificial
                // stays basic at zero, harmless.
            }

            for (std::size_t c = sf_.n_struct + sf_.n_slack;
                 c < sf_.n_total; ++c)
                allowed[c] = false;
        }

        // Phase 2: objective value as the dense reduced-cost
        // installation computes it.
        objv_ = 0.0;
        for (std::size_t r = 0; r < m_; ++r) {
            const double f = sf_.c2[basis_[r]];
            if (f != 0.0)
                objv_ -= f * xB_[r];
        }

        const Status st = primalIterate(sf_.c2, allowed);
        if (st != Status::Optimal) {
            sol.status = st;
            return;
        }
        extract(sol);
    }

    /**
     * Warm continuation from a resolved, factorized basis.
     * @return true when the warm path produced a verdict in `sol`;
     *         false means fall back to a cold solve.
     */
    bool
    warm(Solution &sol)
    {
        // An artificial stuck basic at a meaningful value cannot be
        // trusted (the snapshot came from a different RHS).
        for (std::size_t r = 0; r < m_; ++r) {
            const std::size_t bcol = basis_[r];
            if (!sf_.isArt(bcol))
                continue;
            const double scale =
                sf_.art_scales[bcol - sf_.n_struct - sf_.n_slack];
            if (std::abs(xB_[r]) >
                opts_.feasTol *
                    std::max(scale, opts_.feasFloor))
                return false;
        }

        std::vector<bool> allowed(sf_.n_total, true);
        for (std::size_t c = sf_.n_struct + sf_.n_slack;
             c < sf_.n_total; ++c)
            allowed[c] = false;

        objv_ = 0.0;
        for (std::size_t r = 0; r < m_; ++r) {
            const double f = sf_.c2[basis_[r]];
            if (f != 0.0)
                objv_ -= f * xB_[r];
        }

        bool primal_ok = true;
        for (std::size_t r = 0; r < m_; ++r) {
            const double tol =
                opts_.feasTol *
                std::max(std::abs(sf_.b[r]), opts_.feasFloor);
            if (xB_[r] < -tol) {
                primal_ok = false;
                break;
            }
        }
        if (!primal_ok) {
            // Dual-simplex continuation is sound only from a
            // dual-feasible basis.
            std::vector<double> y, d;
            if (!price(sf_.c2, allowed, y, d))
                return false;
            double obj_scale = 1.0;
            for (std::size_t c = 0; c < sf_.n_total; ++c)
                if (allowed[c])
                    obj_scale = std::max(obj_scale,
                                         std::abs(d[c]));
            const double price_tol = opts_.eps * obj_scale;
            for (std::size_t c = 0; c < sf_.n_total; ++c) {
                if (allowed[c] && !isBasic_[c] &&
                    d[c] < -price_tol)
                    return false;
            }
            // A dual-simplex Infeasible verdict is *not* trusted as
            // a final answer: fall back to cold so the published
            // verdict always comes from the replicated two-phase
            // path.
            if (dualSimplex(sf_.c2, allowed) != Status::Optimal)
                return false;
        }

        const Status st = primalIterate(sf_.c2, allowed);
        if (st == Status::Optimal) {
            extract(sol);
            return sol.status == Status::Optimal;
        }
        if (st == Status::Unbounded) {
            // Legitimate verdict from any starting basis.
            sol.status = Status::Unbounded;
            return true;
        }
        return false; // IterationLimit / NumericalFailure -> cold
    }

    std::size_t pivots() const { return pivots_; }

  private:
    /** Read out an Optimal solution + exportable basis. */
    void
    extract(Solution &sol)
    {
        sol.status = Status::Optimal;
        sol.objective = -objv_;
        sol.values.assign(sf_.n_struct, 0.0);
        for (std::size_t r = 0; r < m_; ++r) {
            const std::size_t bcol = basis_[r];
            if (bcol < sf_.n_struct)
                sol.values[bcol] = std::max(0.0, xB_[r]);
        }
        if (!std::isfinite(sol.objective))
            sol.status = Status::NumericalFailure;
        for (double v : sol.values)
            if (!std::isfinite(v))
                sol.status = Status::NumericalFailure;
        if (sol.status != Status::Optimal)
            return;

        sol.basis.rows.resize(m_);
        sol.basis.structurals = sf_.n_struct;
        for (std::size_t r = 0; r < m_; ++r) {
            const std::size_t bcol = basis_[r];
            Basis::Entry &e = sol.basis.rows[r];
            if (bcol < sf_.n_struct) {
                e.kind = Basis::Kind::Structural;
                e.index = static_cast<std::uint32_t>(bcol);
            } else if (bcol < sf_.n_struct + sf_.n_slack) {
                e.kind = Basis::Kind::Slack;
                e.index = static_cast<std::uint32_t>(
                    sf_.row_of_slack[bcol - sf_.n_struct]);
            } else {
                e.kind = Basis::Kind::Artificial;
                e.index = static_cast<std::uint32_t>(
                    sf_.row_of_art[bcol - sf_.n_struct -
                                   sf_.n_slack]);
            }
        }
    }

    const StdForm &sf_;
    const SolveOptions &opts_;
    std::size_t m_;
    std::vector<double> binv_;       // column-major B^-1
    std::vector<std::size_t> basis_; // basic column per row
    std::vector<bool> isBasic_;
    std::vector<double> xB_;
    double objv_ = 0.0;
    std::size_t budget_ = 0;
    bool bland_ = false;
    std::size_t pivots_ = 0;
};

std::uint64_t
fnv1a64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Shared warm attempt over a prebuilt standard form. @return true
 * on a verdict in `sol`; sol.pivots always holds the pivots
 * consumed, hit or miss.
 */
bool
warmAttempt(const StdForm &sf, const SolveOptions &opts,
            Solution &sol)
{
    auto &ctr = detail::solverCounters();
    ctr.warmAttempts.fetch_add(1);
    Rev rev(sf, opts);
    bool done = false;
    if (rev.resolveWarm(*opts.warmStart) && rev.factorize())
        done = rev.warm(sol);
    sol.pivots = rev.pivots();
    if (done) {
        ctr.warmHits.fetch_add(1);
        if (SRSIM_METRICS_ENABLED() && opts.registry != nullptr)
            opts.registry->counter("solver.warmstart.hits").add(1);
        return true;
    }
    ctr.warmMisses.fetch_add(1);
    if (SRSIM_METRICS_ENABLED() && opts.registry != nullptr)
        opts.registry->counter("solver.warmstart.misses").add(1);
    return false;
}

} // namespace

bool
solveRevisedWarm(const Problem &p, const SolveOptions &opts,
                 Solution &sol)
{
    sol = Solution{};
    if (opts.warmStart == nullptr || opts.warmStart->empty())
        return false;
    const StdForm sf = buildStdForm(p);
    return warmAttempt(sf, opts, sol);
}

Solution
solveRevised(const Problem &p, const SolveOptions &opts)
{
    const StdForm sf = buildStdForm(p);
    Solution sol;
    std::size_t warm_pivots = 0;

    if (opts.warmStart != nullptr && !opts.warmStart->empty()) {
        if (warmAttempt(sf, opts, sol))
            return sol;
        warm_pivots = sol.pivots;
        sol = Solution{};
    }

    Rev rev(sf, opts);
    rev.cold(sol);
    sol.pivots = rev.pivots() + warm_pivots;
    return sol;
}

std::uint64_t
structureSignature(const Problem &p)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a64(h, p.numVariables());
    h = fnv1a64(h, p.numConstraints());
    for (const Constraint &c : p.constraints()) {
        h = fnv1a64(h, static_cast<std::uint64_t>(c.rel));
        h = fnv1a64(h, c.terms.size());
        for (const auto &[idx, coeff] : c.terms) {
            (void)coeff; // pattern only, not numeric data
            h = fnv1a64(h, idx);
        }
    }
    return h;
}

bool
BasisCache::lookup(const std::string &key, std::uint64_t structSig,
                   Basis &out) const
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it != map_.end() && it->second.sig == structSig) {
            out = it->second.basis;
            return true;
        }
    }
    detail::solverCounters().warmMisses.fetch_add(1);
    if (SRSIM_METRICS_ENABLED() && registry_ != nullptr)
        registry_->counter("solver.warmstart.misses").add(1);
    return false;
}

void
BasisCache::store(const std::string &key, std::uint64_t structSig,
                  const Basis &basis)
{
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = map_[key];
    e.sig = structSig;
    e.basis = basis;
}

std::size_t
BasisCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

} // namespace lp
} // namespace srsim
