/**
 * @file
 * Sparse revised simplex with warm-start support.
 *
 * The compiler's LPs (allocation Sec. 5.2, interval covering
 * Sec. 5.3) carry 1-3 nonzeros per column, so maintaining an explicit
 * basis inverse and pricing against the sparse column store does an
 * O(m^2 + nnz) iteration where the dense tableau pays O(m*n). More
 * importantly for the incremental paths (branch-and-bound children,
 * fault repair, online admission churn), a revised solver can *warm
 * start*: resume from a previously optimal basis with a handful of
 * primal or dual pivots instead of a cold two-phase solve.
 *
 * Two entry points with different roles:
 *
 * solveRevisedWarm() is the production warm-start path used by the
 * lp::solve dispatcher under SolverKind::Sparse. It only ever runs
 * *from a candidate basis*; if the basis does not pan out it
 * reports failure and the dispatcher runs the deterministic tableau
 * solver, so cold results stay bit-identical to SolverKind::Dense
 * (published schedules print raw doubles, making golden
 * byte-identity arithmetic-sensitive; see SolverKind).
 *
 * solveRevised() is the complete independent solver — cold
 * two-phase sparse simplex plus the same warm machinery. Its pivot
 * rules mirror the dense solver (same standard form and column
 * order, Dantzig pricing with scale-relative tolerances, same
 * ratio-test tie-break, sticky Bland switch), but its arithmetic
 * (explicit basis inverse, sparse pricing) is independent, so
 * degenerate ties can resolve differently and it may return an
 * alternate optimal vertex. That independence is the point: it is
 * the differential oracle `srfuzz --solver-diff` cross-checks
 * against the tableau for status and objective agreement.
 *
 * Warm-start fallback ladder, most to least reusable:
 *  1. basis fits and factorizes, x_B = B^-1 b primal feasible:
 *     continue with phase-2 primal pivots (0 pivots when the data
 *     did not move the optimum);
 *  2. primal infeasible but reduced costs still dual feasible (the
 *     branch-and-bound child case: one new bound row): dual-simplex
 *     steps restore feasibility;
 *  3. anything else — dimension mismatch, singular basis, an
 *     artificial stuck basic at a nonzero value, numerical failure
 *     mid-flight — falls back to the cold two-phase solve.
 * Every fallback is counted in SolverStats::warmMisses; a re-solve
 * completed from the candidate basis counts as a hit.
 */

#ifndef SRSIM_SOLVER_REVISED_HH_
#define SRSIM_SOLVER_REVISED_HH_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "solver/lp.hh"

namespace srsim {
namespace lp {

/**
 * Solve with the sparse revised simplex. Honors
 * SolveOptions::warmStart; exports Solution::basis on Optimal.
 */
Solution solveRevised(const Problem &p, const SolveOptions &opts = {});

/**
 * Attempt a warm-started revised solve from opts.warmStart only.
 * @return true when the warm continuation produced a final verdict
 *         in `sol` (counted as a warm hit). On false — no usable
 *         basis, or any rung of the fallback ladder failed — `sol`
 *         is meaningless except for sol.pivots, which holds the
 *         pivots consumed by the attempt so the caller can fold
 *         them into its cold re-solve's cumulative count.
 */
bool solveRevisedWarm(const Problem &p, const SolveOptions &opts,
                      Solution &sol);

/**
 * Structural fingerprint of a problem: dimensions, constraint
 * relations, and the sparsity pattern (term indices), but *not* the
 * numeric data (costs, coefficients, rhs). Two problems with equal
 * signatures accept each other's bases dimensionally; the solver
 * still validates feasibility, so a stale signature match costs at
 * most a failed warm attempt.
 */
std::uint64_t structureSignature(const Problem &p);

/**
 * Keyed store of the last optimal basis per re-solve site (one entry
 * per maximal subset / interval work item). Thread-safe: the
 * allocation and scheduling stages solve subsets concurrently.
 * Unbounded by design — entries are a few hundred bytes and the key
 * population is the workload's subset count.
 */
class BasisCache
{
  public:
    /**
     * @param registry when given, lookup misses bump the
     * "solver.warmstart.misses" counter there (the owning session's
     * child registry under the daemon). The per-process SolverStats
     * block counts regardless.
     */
    explicit BasisCache(metrics::Registry *registry = nullptr)
        : registry_(registry)
    {
    }

    /**
     * @return true and fill `out` when `key` holds a basis whose
     *         structure signature matches `structSig`. A miss (no
     *         entry or signature mismatch) counts toward
     *         SolverStats::warmMisses.
     */
    bool lookup(const std::string &key, std::uint64_t structSig,
                Basis &out) const;

    /** Insert or overwrite the basis stored under `key`. */
    void store(const std::string &key, std::uint64_t structSig,
               const Basis &basis);

    std::size_t size() const;

  private:
    struct Entry
    {
        std::uint64_t sig = 0;
        Basis basis;
    };
    metrics::Registry *registry_ = nullptr;
    mutable std::mutex mu_;
    std::unordered_map<std::string, Entry> map_;
};

} // namespace lp
} // namespace srsim

#endif // SRSIM_SOLVER_REVISED_HH_
