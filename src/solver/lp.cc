#include "solver/lp.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <sstream>

#include "metrics/metrics.hh"
#include "solver/revised.hh"
#include "util/logging.hh"
#include "util/matrix.hh"

namespace srsim {
namespace lp {

const char *
statusName(Status s)
{
    switch (s) {
      case Status::Optimal: return "optimal";
      case Status::Infeasible: return "infeasible";
      case Status::Unbounded: return "unbounded";
      case Status::IterationLimit: return "iteration-limit";
      case Status::NumericalFailure: return "numerical-failure";
    }
    return "unknown";
}

std::size_t
Problem::addVariable(double cost, std::string name)
{
    costs_.push_back(cost);
    if (name.empty())
        name = "x" + std::to_string(costs_.size() - 1);
    names_.push_back(std::move(name));
    integer_.push_back(false);
    return costs_.size() - 1;
}

void
Problem::markInteger(std::size_t i)
{
    SRSIM_ASSERT(i < integer_.size(), "markInteger out of range");
    integer_[i] = true;
}

bool
Problem::hasIntegers() const
{
    for (bool b : integer_)
        if (b)
            return true;
    return false;
}

void
Problem::addConstraint(Constraint c)
{
    for (const auto &[idx, coeff] : c.terms) {
        SRSIM_ASSERT(idx < costs_.size(),
                     "constraint references unknown variable ", idx);
        (void)coeff;
    }
    constraints_.push_back(std::move(c));
}

void
Problem::truncateConstraints(std::size_t n)
{
    SRSIM_ASSERT(n <= constraints_.size(),
                 "truncateConstraints beyond current size");
    constraints_.resize(n);
}

namespace {

/**
 * Dense simplex tableau in standard equality form.
 *
 * Layout: rows 0..m-1 are constraints, row m is the phase objective.
 * Columns 0..n-1 are variables (structural, then slack/surplus, then
 * artificial), column n is the RHS.
 */
class Tableau
{
  public:
    Tableau(std::size_t m, std::size_t n)
        : m_(m), n_(n), t_(m + 1, n + 1, 0.0), basis_(m, 0)
    {}

    std::size_t m() const { return m_; }
    std::size_t n() const { return n_; }

    double &at(std::size_t r, std::size_t c) { return t_(r, c); }
    double at(std::size_t r, std::size_t c) const { return t_(r, c); }

    double &rhs(std::size_t r) { return t_(r, n_); }
    double rhs(std::size_t r) const { return t_(r, n_); }

    double &obj(std::size_t c) { return t_(m_, c); }
    double obj(std::size_t c) const { return t_(m_, c); }

    double &objValue() { return t_(m_, n_); }
    double objValue() const { return t_(m_, n_); }

    std::size_t basis(std::size_t r) const { return basis_[r]; }
    void setBasis(std::size_t r, std::size_t col) { basis_[r] = col; }

    /** Largest magnitude in constraint rows of column c. */
    double
    columnScale(std::size_t c) const
    {
        double s = 0.0;
        for (std::size_t r = 0; r < m_; ++r)
            s = std::max(s, std::abs(t_(r, c)));
        return s;
    }

    /**
     * Gauss-Jordan pivot on (row, col).
     *
     * The pivot element must exceed `tol` in magnitude — a tolerance
     * the caller scales to the tableau's magnitude — or the pivot is
     * refused and the tableau left untouched. A refused pivot is a
     * recoverable numerical verdict, never a process abort: the
     * solver's inputs are user data, not internal invariants.
     *
     * @return true if the pivot was applied
     */
    bool
    pivot(std::size_t row, std::size_t col, double tol)
    {
        const double pv = t_(row, col);
        if (!std::isfinite(pv) || !(std::abs(pv) > tol))
            return false;
        const double inv = 1.0 / pv;
        for (std::size_t c = 0; c <= n_; ++c)
            t_(row, c) *= inv;
        t_(row, col) = 1.0;
        for (std::size_t r = 0; r <= m_; ++r) {
            if (r == row)
                continue;
            const double f = t_(r, col);
            if (f == 0.0)
                continue;
            for (std::size_t c = 0; c <= n_; ++c)
                t_(r, c) -= f * t_(row, c);
            t_(r, col) = 0.0;
        }
        basis_[row] = col;
        return true;
    }

    /** @return true if every RHS and objective cell is finite. */
    bool
    finite() const
    {
        for (std::size_t r = 0; r <= m_; ++r)
            if (!std::isfinite(t_(r, n_)))
                return false;
        for (std::size_t c = 0; c <= n_; ++c)
            if (!std::isfinite(t_(m_, c)))
                return false;
        return true;
    }

  private:
    std::size_t m_;
    std::size_t n_;
    Matrix<double> t_;
    std::vector<std::size_t> basis_;
};

/**
 * Run primal simplex iterations on a tableau whose objective row holds
 * reduced costs for a minimization problem.
 *
 * All thresholds are scaled to the magnitude of the row/column they
 * test, so the iteration behaves identically on an instance and on a
 * copy of it multiplied through by 1e8.
 *
 * @param allowedCols columns eligible to enter the basis
 * @param bland sticky anti-cycling state, owned by the caller so the
 *        switch to Bland's rule survives across phases; once set it
 *        is never cleared (reverting to Dantzig could re-enter the
 *        degenerate cycle that forced the switch)
 * @return resulting status (Optimal means reduced costs >= 0)
 */
Status
iterate(Tableau &tab, const std::vector<bool> &allowedCols,
        const SolveOptions &opts, std::size_t &iterationBudget,
        bool &bland, std::size_t &pivots)
{
    const double eps = opts.eps;
    double last_obj = tab.objValue();
    std::size_t stall = 0;
    // Consecutive stalled pivots tolerated before switching to
    // Bland's rule. Degenerate cycles repeat without improving the
    // objective, so a run of m+4 zero-progress pivots is already
    // strong evidence; waiting longer (the old 2*(m+n)) just burns
    // iteration budget inside the cycle.
    const std::size_t stall_limit = tab.m() + 4;

    while (true) {
        if (iterationBudget == 0)
            return Status::IterationLimit;

        // Pricing: pick entering column with negative reduced cost.
        // The threshold is relative to the objective row's magnitude.
        double obj_scale = 1.0;
        for (std::size_t c = 0; c < tab.n(); ++c)
            if (allowedCols[c])
                obj_scale = std::max(obj_scale,
                                     std::abs(tab.obj(c)));
        const double price_tol = eps * obj_scale;
        std::size_t enter = tab.n();
        if (bland) {
            for (std::size_t c = 0; c < tab.n(); ++c) {
                if (allowedCols[c] && tab.obj(c) < -price_tol) {
                    enter = c;
                    break;
                }
            }
        } else {
            double best = -price_tol;
            for (std::size_t c = 0; c < tab.n(); ++c) {
                if (allowedCols[c] && tab.obj(c) < best) {
                    best = tab.obj(c);
                    enter = c;
                }
            }
        }
        if (enter == tab.n())
            return Status::Optimal;

        // Ratio test: pick leaving row. Entries below the column's
        // scaled tolerance are elimination noise, not pivots.
        const double col_tol =
            eps * std::max(1.0, tab.columnScale(enter));
        std::size_t leave = tab.m();
        double best_ratio = std::numeric_limits<double>::infinity();
        for (std::size_t r = 0; r < tab.m(); ++r) {
            const double a = tab.at(r, enter);
            if (a > col_tol) {
                const double ratio = tab.rhs(r) / a;
                if (ratio < best_ratio - eps ||
                    (ratio < best_ratio + eps &&
                     (leave == tab.m() ||
                      tab.basis(r) < tab.basis(leave)))) {
                    best_ratio = ratio;
                    leave = r;
                }
            }
        }
        if (leave == tab.m())
            return Status::Unbounded;

        if (!tab.pivot(leave, enter, col_tol * 1e-3) ||
            !tab.finite())
            return Status::NumericalFailure;
        --iterationBudget;
        ++pivots;

        // Switch to Bland's rule if the objective stops improving, to
        // guarantee termination under degeneracy. The switch is
        // sticky: `bland` is never reset, even when a later pivot
        // does improve the objective or a new phase begins.
        if (std::abs(tab.objValue() - last_obj) <
            eps * std::max(1.0, std::abs(last_obj))) {
            if (++stall > stall_limit)
                bland = true;
        } else {
            stall = 0;
            last_obj = tab.objValue();
        }
    }
}

} // namespace

Solution
solveDense(const Problem &p, const SolveOptions &opts)
{
    const std::size_t n_struct = p.numVariables();
    const std::size_t m = p.numConstraints();
    const double eps = opts.eps;

    // Count slack and artificial columns. Rows are normalized to have
    // non-negative RHS first; then:
    //   <=  : +slack (basic if rhs normalization kept the sense)
    //   >=  : -surplus +artificial
    //   ==  : +artificial
    struct RowPlan
    {
        Relation rel;
        double sign;    // +1 if row kept, -1 if multiplied through
    };
    std::vector<RowPlan> plan(m);
    std::size_t n_slack = 0;
    std::size_t n_art = 0;
    for (std::size_t i = 0; i < m; ++i) {
        const Constraint &c = p.constraints()[i];
        Relation rel = c.rel;
        double sign = 1.0;
        if (c.rhs < 0.0) {
            sign = -1.0;
            if (rel == Relation::LessEq)
                rel = Relation::GreaterEq;
            else if (rel == Relation::GreaterEq)
                rel = Relation::LessEq;
        }
        plan[i] = {rel, sign};
        if (rel != Relation::Equal)
            ++n_slack;
        if (rel != Relation::LessEq)
            ++n_art;
    }

    const std::size_t n_total = n_struct + n_slack + n_art;
    Tableau tab(m, n_total);

    // Fill constraint rows.
    std::size_t slack_col = n_struct;
    std::size_t art_col = n_struct + n_slack;
    std::vector<std::size_t> art_cols;
    std::vector<double> art_scales; // owning row's |rhs|
    art_cols.reserve(n_art);
    art_scales.reserve(n_art);
    for (std::size_t i = 0; i < m; ++i) {
        const Constraint &c = p.constraints()[i];
        const RowPlan &pl = plan[i];
        const double row_mag = std::abs(c.rhs);
        for (const auto &[idx, coeff] : c.terms)
            tab.at(i, idx) += pl.sign * coeff;
        tab.rhs(i) = pl.sign * c.rhs;

        switch (pl.rel) {
          case Relation::LessEq:
            tab.at(i, slack_col) = 1.0;
            tab.setBasis(i, slack_col);
            ++slack_col;
            break;
          case Relation::GreaterEq:
            tab.at(i, slack_col) = -1.0;
            ++slack_col;
            tab.at(i, art_col) = 1.0;
            tab.setBasis(i, art_col);
            art_cols.push_back(art_col);
            art_scales.push_back(row_mag);
            ++art_col;
            break;
          case Relation::Equal:
            tab.at(i, art_col) = 1.0;
            tab.setBasis(i, art_col);
            art_cols.push_back(art_col);
            art_scales.push_back(row_mag);
            ++art_col;
            break;
        }
    }

    std::size_t budget = opts.maxIterations;
    std::vector<bool> allowed(n_total, true);

    Solution sol;
    // Anti-cycling state is per-solve, not per-phase: once phase 1
    // had to fall back to Bland's rule the same degeneracy is still
    // present in phase 2.
    bool bland = false;

    // Phase 1: minimize sum of artificials (skip if none).
    if (n_art > 0) {
        for (std::size_t c : art_cols)
            tab.obj(c) = 1.0;
        // Make reduced costs consistent with the artificial basis.
        for (std::size_t r = 0; r < m; ++r) {
            const std::size_t b = tab.basis(r);
            if (tab.obj(b) != 0.0) {
                const double f = tab.obj(b);
                for (std::size_t c = 0; c <= n_total; ++c)
                    tab.obj(c) -= f * tab.at(r, c);
            }
        }

        Status st = iterate(tab, allowed, opts, budget, bland,
                            sol.pivots);
        if (st == Status::IterationLimit ||
            st == Status::NumericalFailure) {
            sol.status = st;
            return sol;
        }
        // Feasibility test, per row: a residual artificial is
        // rounding noise only relative to ITS OWN constraint's
        // |rhs| (floored by feasFloor). A single
        // aggregate threshold scaled to the largest RHS would let a
        // ~1e6-scale row mask a genuine violation of an x >= 5 row
        // in the same system. Nonbasic artificials sit at zero, so
        // checking basic ones covers the phase-1 objective.
        for (std::size_t r = 0; r < m; ++r) {
            const std::size_t b = tab.basis(r);
            if (b < n_struct + n_slack)
                continue;
            const double value = tab.rhs(r);
            const double scale = art_scales[b - n_struct - n_slack];
            if (value > opts.feasTol *
                            std::max(scale, opts.feasFloor)) {
                sol.status = Status::Infeasible;
                return sol;
            }
        }

        // Drive any artificial still in the basis out (degenerate).
        for (std::size_t r = 0; r < m; ++r) {
            const std::size_t b = tab.basis(r);
            const bool is_art =
                std::find(art_cols.begin(), art_cols.end(), b) !=
                art_cols.end();
            if (!is_art)
                continue;
            std::size_t piv = n_total;
            double piv_tol = eps;
            for (std::size_t c = 0; c < n_struct + n_slack; ++c) {
                const double tol =
                    eps * std::max(1.0, tab.columnScale(c));
                if (std::abs(tab.at(r, c)) > tol) {
                    piv = c;
                    piv_tol = tol;
                    break;
                }
            }
            if (piv != n_total &&
                !tab.pivot(r, piv, piv_tol * 1e-3)) {
                sol.status = Status::NumericalFailure;
                return sol;
            }
            // If no pivot exists the row is all-zero (redundant);
            // the artificial stays basic at value zero, harmless.
        }

        // Forbid artificials from re-entering.
        for (std::size_t c : art_cols)
            allowed[c] = false;
    }

    // Phase 2: install the true objective as reduced costs.
    for (std::size_t c = 0; c <= n_total; ++c)
        tab.obj(c) = 0.0;
    for (std::size_t c = 0; c < n_struct; ++c)
        tab.obj(c) = p.costs()[c];
    for (std::size_t r = 0; r < m; ++r) {
        const std::size_t b = tab.basis(r);
        if (tab.obj(b) != 0.0) {
            const double f = tab.obj(b);
            for (std::size_t c = 0; c <= n_total; ++c)
                tab.obj(c) -= f * tab.at(r, c);
        }
    }

    Status st = iterate(tab, allowed, opts, budget, bland,
                        sol.pivots);
    if (st != Status::Optimal) {
        sol.status = st;
        return sol;
    }

    sol.status = Status::Optimal;
    sol.objective = -tab.objValue();
    sol.values.assign(n_struct, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
        const std::size_t b = tab.basis(r);
        if (b < n_struct)
            sol.values[b] = std::max(0.0, tab.rhs(r));
    }
    if (!std::isfinite(sol.objective))
        sol.status = Status::NumericalFailure;
    for (double v : sol.values)
        if (!std::isfinite(v))
            sol.status = Status::NumericalFailure;
    if (sol.status != Status::Optimal)
        return sol;

    // Export the optimal basis symbolically so a re-solve can warm
    // start from it. Columns map back to their owning row via the
    // construction order above (slacks then artificials, both in
    // row order).
    std::vector<std::size_t> owner_row(n_total, 0);
    {
        std::size_t sc = n_struct;
        std::size_t ac = n_struct + n_slack;
        for (std::size_t i = 0; i < m; ++i) {
            if (plan[i].rel != Relation::Equal)
                owner_row[sc++] = i;
            if (plan[i].rel != Relation::LessEq)
                owner_row[ac++] = i;
        }
    }
    sol.basis.rows.resize(m);
    sol.basis.structurals = n_struct;
    for (std::size_t r = 0; r < m; ++r) {
        const std::size_t b = tab.basis(r);
        Basis::Entry &e = sol.basis.rows[r];
        if (b < n_struct) {
            e.kind = Basis::Kind::Structural;
            e.index = static_cast<std::uint32_t>(b);
        } else if (b < n_struct + n_slack) {
            e.kind = Basis::Kind::Slack;
            e.index = static_cast<std::uint32_t>(owner_row[b]);
        } else {
            e.kind = Basis::Kind::Artificial;
            e.index = static_cast<std::uint32_t>(owner_row[b]);
        }
    }
    return sol;
}

namespace detail {

SolverCounterBlock &
solverCounters()
{
    static SolverCounterBlock block;
    return block;
}

} // namespace detail

namespace {

std::atomic<bool> g_diff_enabled{false};

struct DiffState
{
    std::atomic<std::uint64_t> solves{0};
    std::atomic<std::uint64_t> disagreements{0};
    std::mutex mu;
    std::string firstReport;
};

DiffState &
diffState()
{
    static DiffState st;
    return st;
}

/**
 * Compare one oracle pair. Verdictless outcomes (IterationLimit,
 * NumericalFailure) are skipped: the solvers may legitimately give
 * up at different points on a numerically hard instance.
 */
void
diffCompare(const Problem &p, const Solution &dense,
            const Solution &other, const char *label)
{
    const auto verdict = [](Status s) {
        return s == Status::Optimal || s == Status::Infeasible ||
               s == Status::Unbounded;
    };
    if (!verdict(dense.status) || !verdict(other.status))
        return;
    bool bad = dense.status != other.status;
    if (!bad && dense.status == Status::Optimal) {
        const double scale = std::max(
            {1.0, std::abs(dense.objective),
             std::abs(other.objective)});
        bad = std::abs(dense.objective - other.objective) >
              1e-6 * scale;
    }
    if (!bad)
        return;
    DiffState &st = diffState();
    st.disagreements.fetch_add(1);
    std::lock_guard<std::mutex> lock(st.mu);
    if (!st.firstReport.empty())
        return;
    std::ostringstream os;
    os << label << ": dense " << statusName(dense.status) << " obj "
       << dense.objective << " vs " << statusName(other.status)
       << " obj " << other.objective << " ("
       << p.numConstraints() << " rows, " << p.numVariables()
       << " vars)";
    st.firstReport = os.str();
}

/**
 * Production solve under SolverKind::Sparse: resume from the warm
 * basis when one is usable, otherwise (or on any fallback) run the
 * deterministic tableau path. Failed warm attempts still count
 * their pivots into the returned total.
 */
Solution
warmOrDense(const Problem &p, const SolveOptions &opts)
{
    if (opts.warmStart != nullptr && !opts.warmStart->empty()) {
        Solution sol;
        if (solveRevisedWarm(p, opts, sol))
            return sol;
        const std::size_t warm_pivots = sol.pivots;
        SolveOptions cold = opts;
        cold.warmStart = nullptr;
        sol = solveDense(p, cold);
        sol.pivots += warm_pivots;
        return sol;
    }
    return solveDense(p, opts);
}

/** Run every oracle, record disagreements, return the production
 *  result (opts.kind semantics, warm start honored). */
Solution
diffSolve(const Problem &p, const SolveOptions &opts)
{
    diffState().solves.fetch_add(1);
    SolveOptions cold = opts;
    cold.warmStart = nullptr;
    const Solution dense = solveDense(p, cold);
    const Solution sparse = solveRevised(p, cold);
    diffCompare(p, dense, sparse, "sparse-cold");
    if (opts.warmStart != nullptr && !opts.warmStart->empty()) {
        const Solution warm = solveRevised(p, opts);
        diffCompare(p, dense, warm, "sparse-warm");
        if (opts.kind == SolverKind::Sparse)
            return warmOrDense(p, opts);
    }
    return dense;
}

} // namespace

SolverStats
solverStats()
{
    const detail::SolverCounterBlock &b = detail::solverCounters();
    SolverStats s;
    s.solves = b.solves.load();
    s.pivots = b.pivots.load();
    s.warmAttempts = b.warmAttempts.load();
    s.warmHits = b.warmHits.load();
    s.warmMisses = b.warmMisses.load();
    s.mipNodes = b.mipNodes.load();
    s.mipProblemCopies = b.mipProblemCopies.load();
    return s;
}

void
resetSolverStats()
{
    detail::SolverCounterBlock &b = detail::solverCounters();
    b.solves.store(0);
    b.pivots.store(0);
    b.warmAttempts.store(0);
    b.warmHits.store(0);
    b.warmMisses.store(0);
    b.mipNodes.store(0);
    b.mipProblemCopies.store(0);
}

void
setSolverDiff(bool enabled)
{
    g_diff_enabled.store(enabled, std::memory_order_relaxed);
}

SolverDiffStats
solverDiffStats()
{
    DiffState &st = diffState();
    SolverDiffStats out;
    out.solves = st.solves.load();
    out.disagreements = st.disagreements.load();
    std::lock_guard<std::mutex> lock(st.mu);
    out.firstReport = st.firstReport;
    return out;
}

void
resetSolverDiffStats()
{
    DiffState &st = diffState();
    st.solves.store(0);
    st.disagreements.store(0);
    std::lock_guard<std::mutex> lock(st.mu);
    st.firstReport.clear();
}

Solution
solve(const Problem &p, const SolveOptions &opts)
{
    Solution sol;
    if (g_diff_enabled.load(std::memory_order_relaxed)) {
        sol = diffSolve(p, opts);
    } else if (opts.kind == SolverKind::Sparse) {
        sol = warmOrDense(p, opts);
    } else {
        sol = solveDense(p, opts);
    }
    detail::SolverCounterBlock &b = detail::solverCounters();
    b.solves.fetch_add(1);
    b.pivots.fetch_add(sol.pivots);
    if (SRSIM_METRICS_ENABLED() && opts.registry != nullptr) {
        opts.registry->counter("solver.solves").add(1);
        opts.registry->counter("solver.pivots").add(sol.pivots);
    }
    return sol;
}

namespace {

/** One branch-and-bound bound: var <= value or var >= value. */
struct Branch
{
    std::size_t var;
    bool upper;   // true: var <= value, false: var >= value
    double value;
};

} // namespace

Solution
solveMip(const Problem &p, const MipOptions &opts)
{
    if (!p.hasIntegers())
        return solve(p, opts.lp);

    Solution best;
    best.status = Status::Infeasible;
    double best_obj = std::numeric_limits<double>::infinity();
    bool capped = false;
    bool numerical = false;
    std::size_t total_pivots = 0;

    // One B&B tree node: the branch bounds that define its
    // subproblem, plus the parent relaxation's optimal basis for a
    // dual-simplex warm start (empty at the root / in dense mode).
    struct Node
    {
        std::vector<Branch> branches;
        Basis parentBasis;
    };

    // A single working instance carries the branch bound rows:
    // truncate back to the base constraints and append this node's
    // bounds, instead of copying the whole Problem per node.
    Problem work = p;
    const std::size_t base_rows = work.numConstraints();
    detail::solverCounters().mipProblemCopies.fetch_add(1);

    // Depth-first stack of nodes.
    std::vector<Node> stack;
    stack.push_back(Node{});
    std::size_t nodes = 0;

    while (!stack.empty()) {
        if (nodes++ >= opts.maxNodes) {
            capped = true;
            break;
        }
        detail::solverCounters().mipNodes.fetch_add(1);
        const Node node = std::move(stack.back());
        stack.pop_back();

        work.truncateConstraints(base_rows);
        for (const Branch &b : node.branches) {
            work.addConstraint({{b.var, 1.0}},
                               b.upper ? Relation::LessEq
                                       : Relation::GreaterEq,
                               b.value);
        }
        SolveOptions lpo = opts.lp;
        lpo.warmStart =
            node.parentBasis.empty() ? nullptr : &node.parentBasis;
        Solution rel = solve(work, lpo);
        total_pivots += rel.pivots;

        if (rel.status == Status::Unbounded) {
            // An unbounded relaxation at the root means the MIP is
            // unbounded too (branching only tightens).
            if (node.branches.empty()) {
                rel.pivots = total_pivots;
                return rel;
            }
            continue;
        }
        if (rel.status == Status::NumericalFailure)
            numerical = true; // pruned, but remember why
        if (rel.status != Status::Optimal)
            continue; // infeasible subtree (or iteration trouble)
        if (rel.objective >= best_obj - opts.lp.eps)
            continue; // pruned by the incumbent

        // Most-fractional integral variable.
        std::size_t frac_var = SIZE_MAX;
        double frac_dist = opts.integralityTol;
        for (std::size_t i = 0; i < p.numVariables(); ++i) {
            if (!p.isInteger(i))
                continue;
            const double v = rel.values[i];
            const double d = std::abs(v - std::round(v));
            if (d > frac_dist) {
                frac_dist = d;
                frac_var = i;
            }
        }
        if (frac_var == SIZE_MAX) {
            // Integral solution: new incumbent.
            best = rel;
            best_obj = rel.objective;
            continue;
        }

        const double v = rel.values[frac_var];
        Node down{node.branches, rel.basis};
        down.branches.push_back(Branch{frac_var, true,
                                       std::floor(v)});
        Node up{node.branches, rel.basis};
        up.branches.push_back(Branch{frac_var, false,
                                     std::ceil(v)});
        // Explore the nearer bound first (stack order: push last).
        if (v - std::floor(v) <= 0.5) {
            stack.push_back(std::move(up));
            stack.push_back(std::move(down));
        } else {
            stack.push_back(std::move(down));
            stack.push_back(std::move(up));
        }
    }

    if (capped && best.status != Status::Optimal) {
        Solution s;
        s.status = Status::IterationLimit;
        s.pivots = total_pivots;
        return s;
    }
    if (capped)
        best.status = Status::IterationLimit;
    // A subtree lost to numerical trouble means "no integral
    // solution exists" was never certified: report the failure
    // unless an incumbent was found anyway.
    if (numerical && best.status == Status::Infeasible)
        best.status = Status::NumericalFailure;
    best.pivots = total_pivots;
    return best;
}

} // namespace lp
} // namespace srsim
