/**
 * @file
 * Linear-program model and solver interface.
 *
 * The paper casts both message-interval allocation (Sec. 5.2,
 * constraints (3)-(4)) and interval scheduling (Sec. 5.3, the
 * Blazewicz-style formulation over link-feasible sets) as mathematical
 * programs. srsim solves them with this self-contained two-phase dense
 * simplex. Variables are preemptive transmission *durations*, which
 * are naturally continuous, so the LP relaxation carries the same
 * feasibility semantics as the paper's integer programs.
 *
 * Model: minimize c^T x subject to linear constraints, with every
 * variable constrained to x >= 0.
 */

#ifndef SRSIM_SOLVER_LP_HH_
#define SRSIM_SOLVER_LP_HH_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace srsim {

namespace metrics {
class Registry;
} // namespace metrics

namespace lp {

/** Constraint sense. */
enum class Relation { LessEq, GreaterEq, Equal };

/**
 * Solver outcome.
 *
 * NumericalFailure means the tableau degraded past what the scaled
 * tolerances can certify (a degenerate pivot with no acceptable
 * alternative, or a non-finite value appearing during elimination).
 * It is a *structured* verdict: callers decide how to degrade; the
 * solver never aborts the process on a numerically hard instance.
 */
enum class Status
{
    Optimal,
    Infeasible,
    Unbounded,
    IterationLimit,
    NumericalFailure,
};

/** Alias used by the compile pipeline's error taxonomy. */
using SolveStatus = Status;

/** @return human-readable status name. */
const char *statusName(Status s);

/** One linear constraint: sum(coeff_i * x_i) REL rhs. */
struct Constraint
{
    std::vector<std::pair<std::size_t, double>> terms;
    Relation rel = Relation::LessEq;
    double rhs = 0.0;
};

/**
 * A linear program in minimization form with non-negative variables.
 * Variables may additionally be marked integral, in which case
 * solveMip() enforces integrality by branch and bound (solve()
 * ignores the marks and returns the LP relaxation).
 */
class Problem
{
  public:
    /**
     * Add a decision variable.
     * @param cost objective coefficient
     * @param name optional diagnostic name
     * @return variable index
     */
    std::size_t addVariable(double cost, std::string name = "");

    /** Require variable i to take an integer value in solveMip(). */
    void markInteger(std::size_t i);

    /** @return true if variable i is integrality-constrained. */
    bool isInteger(std::size_t i) const { return integer_[i]; }

    /** @return true if any variable is integrality-constrained. */
    bool hasIntegers() const;

    /** Add a constraint; all variable indices must already exist. */
    void addConstraint(Constraint c);

    /** Convenience: add sum(terms) REL rhs. */
    void
    addConstraint(std::vector<std::pair<std::size_t, double>> terms,
                  Relation rel, double rhs)
    {
        addConstraint(Constraint{std::move(terms), rel, rhs});
    }

    /**
     * Drop every constraint with index >= n (variables are kept).
     * Branch and bound uses this to push/pop branch bound rows on a
     * single working instance instead of copying the whole problem
     * at every node.
     */
    void truncateConstraints(std::size_t n);

    std::size_t numVariables() const { return costs_.size(); }
    std::size_t numConstraints() const { return constraints_.size(); }

    const std::vector<double> &costs() const { return costs_; }
    const std::vector<Constraint> &constraints() const
    {
        return constraints_;
    }
    const std::string &variableName(std::size_t i) const
    {
        return names_[i];
    }

  private:
    std::vector<double> costs_;
    std::vector<std::string> names_;
    std::vector<bool> integer_;
    std::vector<Constraint> constraints_;
};

/**
 * A snapshot of an optimal simplex basis, used to warm-start a
 * re-solve of the same (or a structurally similar) problem.
 *
 * Entries are *symbolic* — "structural variable i", "row r's slack /
 * surplus", "row r's artificial" — rather than raw standard-form
 * column indices, so a basis survives re-solves whose slack column
 * layout shifted (e.g. a branch-and-bound child that appended one
 * bound row). The sparse solver validates a candidate basis against
 * the new problem (dimension check, factorization, feasibility) and
 * falls back to a cold two-phase solve when it does not fit.
 */
struct Basis
{
    enum class Kind : std::uint8_t { Structural, Slack, Artificial };
    struct Entry
    {
        Kind kind = Kind::Slack;
        /** Variable index (Structural) or row index (otherwise). */
        std::uint32_t index = 0;
    };
    /** Basic entry per constraint row, in row order. */
    std::vector<Entry> rows;
    /** numVariables() of the problem the basis was taken from. */
    std::size_t structurals = 0;

    bool empty() const { return rows.empty(); }
};

/** Result of a solve. */
struct Solution
{
    Status status = Status::Infeasible;
    /** Objective value; meaningful only when status == Optimal. */
    double objective = 0.0;
    /** Variable values; meaningful only when status == Optimal. */
    std::vector<double> values;
    /**
     * Simplex pivots consumed, *cumulative* across phase 1, phase 2,
     * warm-start continuation, and (for solveMip) every explored
     * branch-and-bound node.
     */
    std::size_t pivots = 0;
    /**
     * Optimal basis snapshot for warm-starting a re-solve. Filled
     * by both solvers on Optimal; empty otherwise.
     */
    Basis basis;

    bool feasible() const { return status == Status::Optimal; }
};

/**
 * Which solver stack the lp::solve dispatcher uses.
 *
 * Dense runs the two-phase tableau simplex for everything and
 * ignores warm-start bases. Sparse layers the revised-simplex
 * warm-start machinery on top of it: a solve carrying a usable warm
 * basis resumes with revised primal/dual pivots, and everything
 * else — cold solves, and any warm attempt that falls through the
 * fallback ladder — runs the identical tableau path.
 *
 * Cold solves are therefore bit-identical across both kinds by
 * construction. That is deliberate: published schedules print raw
 * doubles, so the golden byte-identity suite requires the cold
 * pipeline to be arithmetic-for-arithmetic deterministic, which no
 * independently-implemented elimination order can provide. The
 * genuinely independent sparse implementation (solveRevised) is the
 * differential oracle instead: `srfuzz --solver-diff` cross-checks
 * its verdicts and objectives against the tableau on every case.
 */
enum class SolverKind { Dense, Sparse };

/** Solver knobs. */
struct SolveOptions
{
    /**
     * Solver stack for this solve. There is no process-wide default
     * any more: the engine context carries the configured kind
     * (EngineContext::solveOptions() pre-fills it) and the CLI entry
     * layer parses SRSIM_SOLVER exactly once into the root context,
     * so a mid-run environment change cannot flip the solver.
     */
    SolverKind kind = SolverKind::Sparse;
    /** Hard cap on pivots across both phases. */
    std::size_t maxIterations = 200000;
    /**
     * Base numeric tolerance for pivoting and pricing. Applied
     * *relative* to the tableau's magnitude: a column whose largest
     * entry is ~1e8 treats entries below ~1e8 * eps as zero, so
     * well-scaled-but-large instances neither pivot on rounding
     * noise nor abort.
     */
    double eps = 1e-9;
    /**
     * Relative phase-1 feasibility tolerance: the instance counts as
     * infeasible when the residual artificial sum exceeds
     * feasTol * max(rhsScale, feasFloor), where rhsScale is the
     * largest |rhs| of the instance. Tiny instances therefore get a
     * proportionally tiny acceptance threshold instead of the old
     * absolute 1e-6.
     */
    double feasTol = 1e-7;
    /** Floor for the feasibility scale (guards all-zero RHS). */
    double feasFloor = 1e-6;
    /**
     * Candidate warm-start basis (borrowed; must outlive the call).
     * Honored by the sparse revised solver only: when the basis fits
     * the problem it resumes with primal phase-2 or dual-simplex
     * steps; on dimension mismatch, singular factorization, or
     * numerical failure it falls back to a cold two-phase solve.
     * The dense solver ignores it.
     */
    const Basis *warmStart = nullptr;
    /**
     * When set (and metrics are enabled), the dispatcher bumps
     * "solver.solves"/"solver.pivots" and the warm-start machinery
     * bumps "solver.warmstart.{attempts,hits,misses}" against this
     * registry — a per-session child registry under the daemon, the
     * process registry under the default context. nullptr records
     * nothing (the process-wide SolverStats block still counts).
     */
    metrics::Registry *registry = nullptr;
};

/** Process-wide solver counters (monotonic, thread-safe). */
struct SolverStats
{
    std::uint64_t solves = 0;
    std::uint64_t pivots = 0;
    std::uint64_t warmAttempts = 0;
    std::uint64_t warmHits = 0;
    std::uint64_t warmMisses = 0;
    std::uint64_t mipNodes = 0;
    std::uint64_t mipProblemCopies = 0;
};

/** Snapshot of the process-wide solver counters. */
SolverStats solverStats();

/** Reset the process-wide solver counters (tests / benches). */
void resetSolverStats();

/**
 * Differential oracle mode: when enabled, every lp::solve runs the
 * dense tableau, the sparse cold, and (when a warm basis was passed)
 * the sparse warm solver, cross-checks status agreement and
 * objective equality to 1e-6 relative, and records disagreements.
 * The production result (per defaultSolver) is still returned, so
 * enabling the oracle never changes published schedules.
 */
void setSolverDiff(bool enabled);

/** Tally of the differential oracle. */
struct SolverDiffStats
{
    std::uint64_t solves = 0;
    std::uint64_t disagreements = 0;
    /** Description of the first disagreement (empty when none). */
    std::string firstReport;
};

SolverDiffStats solverDiffStats();
void resetSolverDiffStats();

namespace detail {

/** Internal: the mutable counters behind solverStats(). */
struct SolverCounterBlock
{
    std::atomic<std::uint64_t> solves{0};
    std::atomic<std::uint64_t> pivots{0};
    std::atomic<std::uint64_t> warmAttempts{0};
    std::atomic<std::uint64_t> warmHits{0};
    std::atomic<std::uint64_t> warmMisses{0};
    std::atomic<std::uint64_t> mipNodes{0};
    std::atomic<std::uint64_t> mipProblemCopies{0};
};

SolverCounterBlock &solverCounters();

} // namespace detail

/**
 * Solve the LP relaxation with the stack selected by
 * SolveOptions::kind: warm-start-capable (SolverKind::Sparse, the
 * default) or pure dense tableau. Cold solves produce bit-identical
 * results under either kind; only solves carrying a usable
 * SolveOptions::warmStart diverge, by resuming from the candidate
 * basis instead of re-running two phases. Integrality marks are
 * ignored (this is the relaxation).
 */
Solution solve(const Problem &p, const SolveOptions &opts = {});

/** The dense two-phase tableau simplex (the differential oracle). */
Solution solveDense(const Problem &p, const SolveOptions &opts = {});

/** Branch-and-bound knobs. */
struct MipOptions
{
    /** Hard cap on explored branch-and-bound nodes. */
    std::size_t maxNodes = 20000;
    /** A value within this of an integer counts as integral. */
    double integralityTol = 1e-6;
    /** Options for the LP relaxations. */
    SolveOptions lp;
};

/**
 * Solve the problem with integrality enforced on the marked
 * variables, by LP-based branch and bound (most-fractional
 * branching, depth-first, best-solution pruning).
 *
 * Status semantics: Optimal = best integral solution found and the
 * tree was fully explored; IterationLimit = the node cap was hit
 * (values hold the incumbent if one was found); Infeasible = no
 * integral solution exists.
 */
Solution solveMip(const Problem &p, const MipOptions &opts = {});

} // namespace lp
} // namespace srsim

#endif // SRSIM_SOLVER_LP_HH_
