/**
 * @file
 * Linear-program model and solver interface.
 *
 * The paper casts both message-interval allocation (Sec. 5.2,
 * constraints (3)-(4)) and interval scheduling (Sec. 5.3, the
 * Blazewicz-style formulation over link-feasible sets) as mathematical
 * programs. srsim solves them with this self-contained two-phase dense
 * simplex. Variables are preemptive transmission *durations*, which
 * are naturally continuous, so the LP relaxation carries the same
 * feasibility semantics as the paper's integer programs.
 *
 * Model: minimize c^T x subject to linear constraints, with every
 * variable constrained to x >= 0.
 */

#ifndef SRSIM_SOLVER_LP_HH_
#define SRSIM_SOLVER_LP_HH_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace srsim {
namespace lp {

/** Constraint sense. */
enum class Relation { LessEq, GreaterEq, Equal };

/**
 * Solver outcome.
 *
 * NumericalFailure means the tableau degraded past what the scaled
 * tolerances can certify (a degenerate pivot with no acceptable
 * alternative, or a non-finite value appearing during elimination).
 * It is a *structured* verdict: callers decide how to degrade; the
 * solver never aborts the process on a numerically hard instance.
 */
enum class Status
{
    Optimal,
    Infeasible,
    Unbounded,
    IterationLimit,
    NumericalFailure,
};

/** Alias used by the compile pipeline's error taxonomy. */
using SolveStatus = Status;

/** @return human-readable status name. */
const char *statusName(Status s);

/** One linear constraint: sum(coeff_i * x_i) REL rhs. */
struct Constraint
{
    std::vector<std::pair<std::size_t, double>> terms;
    Relation rel = Relation::LessEq;
    double rhs = 0.0;
};

/**
 * A linear program in minimization form with non-negative variables.
 * Variables may additionally be marked integral, in which case
 * solveMip() enforces integrality by branch and bound (solve()
 * ignores the marks and returns the LP relaxation).
 */
class Problem
{
  public:
    /**
     * Add a decision variable.
     * @param cost objective coefficient
     * @param name optional diagnostic name
     * @return variable index
     */
    std::size_t addVariable(double cost, std::string name = "");

    /** Require variable i to take an integer value in solveMip(). */
    void markInteger(std::size_t i);

    /** @return true if variable i is integrality-constrained. */
    bool isInteger(std::size_t i) const { return integer_[i]; }

    /** @return true if any variable is integrality-constrained. */
    bool hasIntegers() const;

    /** Add a constraint; all variable indices must already exist. */
    void addConstraint(Constraint c);

    /** Convenience: add sum(terms) REL rhs. */
    void
    addConstraint(std::vector<std::pair<std::size_t, double>> terms,
                  Relation rel, double rhs)
    {
        addConstraint(Constraint{std::move(terms), rel, rhs});
    }

    std::size_t numVariables() const { return costs_.size(); }
    std::size_t numConstraints() const { return constraints_.size(); }

    const std::vector<double> &costs() const { return costs_; }
    const std::vector<Constraint> &constraints() const
    {
        return constraints_;
    }
    const std::string &variableName(std::size_t i) const
    {
        return names_[i];
    }

  private:
    std::vector<double> costs_;
    std::vector<std::string> names_;
    std::vector<bool> integer_;
    std::vector<Constraint> constraints_;
};

/** Result of a solve. */
struct Solution
{
    Status status = Status::Infeasible;
    /** Objective value; meaningful only when status == Optimal. */
    double objective = 0.0;
    /** Variable values; meaningful only when status == Optimal. */
    std::vector<double> values;
    /** Simplex pivots consumed (diagnostic). */
    std::size_t pivots = 0;

    bool feasible() const { return status == Status::Optimal; }
};

/** Solver knobs. */
struct SolveOptions
{
    /** Hard cap on pivots across both phases. */
    std::size_t maxIterations = 200000;
    /**
     * Base numeric tolerance for pivoting and pricing. Applied
     * *relative* to the tableau's magnitude: a column whose largest
     * entry is ~1e8 treats entries below ~1e8 * eps as zero, so
     * well-scaled-but-large instances neither pivot on rounding
     * noise nor abort.
     */
    double eps = 1e-9;
    /**
     * Relative phase-1 feasibility tolerance: the instance counts as
     * infeasible when the residual artificial sum exceeds
     * feasTol * max(rhsScale, feasFloor), where rhsScale is the
     * largest |rhs| of the instance. Tiny instances therefore get a
     * proportionally tiny acceptance threshold instead of the old
     * absolute 1e-6.
     */
    double feasTol = 1e-7;
    /** Floor for the feasibility scale (guards all-zero RHS). */
    double feasFloor = 1e-6;
};

/**
 * Solve the LP with the two-phase primal simplex method.
 *
 * Uses Dantzig pricing with an automatic switch to Bland's rule when
 * the objective stalls, which guarantees termination. Once taken,
 * the switch is sticky for the remainder of the solve (both phases):
 * reverting to Dantzig mid-solve could re-enter the degenerate cycle
 * that triggered it. Integrality marks are ignored (this is the
 * relaxation).
 */
Solution solve(const Problem &p, const SolveOptions &opts = {});

/** Branch-and-bound knobs. */
struct MipOptions
{
    /** Hard cap on explored branch-and-bound nodes. */
    std::size_t maxNodes = 20000;
    /** A value within this of an integer counts as integral. */
    double integralityTol = 1e-6;
    /** Options for the LP relaxations. */
    SolveOptions lp;
};

/**
 * Solve the problem with integrality enforced on the marked
 * variables, by LP-based branch and bound (most-fractional
 * branching, depth-first, best-solution pruning).
 *
 * Status semantics: Optimal = best integral solution found and the
 * tree was fully explored; IterationLimit = the node cap was hit
 * (values hold the incumbent if one was found); Infeasible = no
 * integral solution exists.
 */
Solution solveMip(const Problem &p, const MipOptions &opts = {});

} // namespace lp
} // namespace srsim

#endif // SRSIM_SOLVER_LP_HH_
