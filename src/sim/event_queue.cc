#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace srsim {

void
EventQueue::schedule(Time t, Callback fn)
{
    SRSIM_ASSERT(timeGe(t, now_), "scheduling into the past: ", t,
                 " < ", now_);
    events_.push(Event{t, seq_++, std::move(fn)});
}

bool
EventQueue::runNext()
{
    if (events_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast is the
    // standard idiom but copying the callback keeps this simple and
    // safe.
    Event ev = events_.top();
    events_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && runNext())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Time until)
{
    std::uint64_t n = 0;
    while (!events_.empty() && timeLe(events_.top().time, until)) {
        runNext();
        ++n;
    }
    return n;
}

} // namespace srsim
