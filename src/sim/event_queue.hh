/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal calendar: events are (time, sequence, callback) triples
 * executed in time order with FIFO tie-breaking, which is exactly the
 * arbitration order the wormhole simulator needs for its
 * first-come-first-served link queues.
 */

#ifndef SRSIM_SIM_EVENT_QUEUE_HH_
#define SRSIM_SIM_EVENT_QUEUE_HH_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hh"

namespace srsim {

/** Time-ordered event calendar with deterministic tie-breaking. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule fn at absolute time t (>= now). */
    void schedule(Time t, Callback fn);

    /** Schedule fn `delay` after now. */
    void scheduleAfter(Time delay, Callback fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    /** @return current simulation time. */
    Time now() const { return now_; }

    bool empty() const { return events_.empty(); }
    std::size_t pending() const { return events_.size(); }

    /**
     * Execute the earliest event.
     * @return false if the queue was empty.
     */
    bool runNext();

    /**
     * Run until the queue drains or `limit` events have executed.
     * @return number of events executed
     */
    std::uint64_t run(std::uint64_t limit = UINT64_MAX);

    /** Run events with time <= until (events they spawn included). */
    std::uint64_t runUntil(Time until);

  private:
    struct Event
    {
        Time time;
        std::uint64_t seq;
        Callback fn;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Time now_ = 0.0;
    std::uint64_t seq_ = 0;
};

} // namespace srsim

#endif // SRSIM_SIM_EVENT_QUEUE_HH_
