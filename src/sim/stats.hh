/**
 * @file
 * Online statistics used by the experiment harness.
 *
 * The paper's Figs. 7-10 plot, per load point, the minimum, average,
 * and maximum of the output-generation interval (and latency) over
 * many invocations — the "spikes" that mark output inconsistency.
 * SeriesStats accumulates exactly that triple.
 */

#ifndef SRSIM_SIM_STATS_HH_
#define SRSIM_SIM_STATS_HH_

#include <cmath>
#include <cstddef>
#include <limits>

#include "util/logging.hh"
#include "util/time.hh"

namespace srsim {

/**
 * Running min/mean/max/variance accumulator (Welford's online
 * update for the second moment, numerically stable for the long
 * near-constant series SR runs produce).
 */
class SeriesStats
{
  public:
    void
    add(double v)
    {
        SRSIM_ASSERT(!std::isnan(v), "NaN sample added to series");
        if (count_ == 0) {
            min_ = max_ = v;
        } else {
            if (v < min_)
                min_ = v;
            if (v > max_)
                max_ = v;
        }
        sum_ += v;
        ++count_;
        const double delta = v - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (v - mean_);
    }

    std::size_t count() const { return count_; }

    double
    min() const
    {
        SRSIM_ASSERT(count_ > 0, "min of empty series");
        return min_;
    }

    double
    max() const
    {
        SRSIM_ASSERT(count_ > 0, "max of empty series");
        return max_;
    }

    double
    mean() const
    {
        SRSIM_ASSERT(count_ > 0, "mean of empty series");
        return sum_ / static_cast<double>(count_);
    }

    /** Population variance (zero for a single sample). */
    double
    variance() const
    {
        SRSIM_ASSERT(count_ > 0, "variance of empty series");
        return m2_ / static_cast<double>(count_);
    }

    /** Population standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Spread max - min; zero for constant series. */
    double spread() const { return max() - min(); }

    /** @return true if every sample equals every other within eps. */
    bool
    constant(double eps = kTimeEps) const
    {
        return count_ > 0 && (max_ - min_) <= eps;
    }

  private:
    std::size_t count_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double sum_ = 0.0;
    double mean_ = 0.0;   ///< Welford running mean
    double m2_ = 0.0;     ///< Welford sum of squared deviations
};

} // namespace srsim

#endif // SRSIM_SIM_STATS_HH_
