/**
 * @file
 * Task allocation: the mapping-step that fixes each task to a
 * multicomputer node and thereby fixes every message's source and
 * destination node (Sec. 1 of the paper).
 *
 * The paper takes the allocation as given; srsim provides several
 * allocators (round-robin, random, and a communication-aware greedy
 * heuristic) so that experiments can control this degree of freedom.
 */

#ifndef SRSIM_MAPPING_ALLOCATION_HH_
#define SRSIM_MAPPING_ALLOCATION_HH_

#include <vector>

#include "tfg/tfg.hh"
#include "topology/topology.hh"
#include "util/rng.hh"

namespace srsim {

/** Assignment of every TFG task to a topology node. */
class TaskAllocation
{
  public:
    /**
     * @param numTasks number of tasks to place
     * @param numNodes number of nodes available
     */
    TaskAllocation(int numTasks, int numNodes);

    /** Place task t on node n. */
    void assign(TaskId t, NodeId n);

    /** @return node hosting task t (fatal if unassigned). */
    NodeId nodeOf(TaskId t) const;

    /** @return true if every task has a node. */
    bool complete() const;

    /** Tasks placed on node n. */
    std::vector<TaskId> tasksAt(NodeId n) const;

    /** @return true if message m's endpoints share a node. */
    bool coLocated(const TaskFlowGraph &g, MessageId m) const;

    /** Messages that actually traverse the network. */
    std::vector<MessageId>
    networkMessages(const TaskFlowGraph &g) const;

    int numTasks() const { return static_cast<int>(nodes_.size()); }
    int numNodes() const { return numNodes_; }

  private:
    std::vector<NodeId> nodes_;
    int numNodes_;
};

namespace alloc {

/** Task i on node (i * stride) mod N; stride spreads the pipeline. */
TaskAllocation
roundRobin(const TaskFlowGraph &g, const Topology &topo,
           int stride = 1);

/** Uniform random placement on distinct nodes (if capacity allows). */
TaskAllocation
random(const TaskFlowGraph &g, const Topology &topo, Rng &rng);

/**
 * Communication-aware greedy placement: tasks are placed in
 * topological order, each on the free node that minimizes the sum of
 * bytes x hop-distance to its already-placed neighbours.
 */
TaskAllocation greedy(const TaskFlowGraph &g, const Topology &topo);

} // namespace alloc

} // namespace srsim

#endif // SRSIM_MAPPING_ALLOCATION_HH_
