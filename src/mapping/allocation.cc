#include "mapping/allocation.hh"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/logging.hh"

namespace srsim {

TaskAllocation::TaskAllocation(int numTasks, int numNodes)
    : nodes_(static_cast<std::size_t>(numTasks), kInvalidNode),
      numNodes_(numNodes)
{
    SRSIM_ASSERT(numTasks > 0 && numNodes > 0,
                 "allocation needs tasks and nodes");
}

void
TaskAllocation::assign(TaskId t, NodeId n)
{
    SRSIM_ASSERT(t >= 0 && t < numTasks(), "bad task id ", t);
    SRSIM_ASSERT(n >= 0 && n < numNodes_, "bad node id ", n);
    nodes_[static_cast<std::size_t>(t)] = n;
}

NodeId
TaskAllocation::nodeOf(TaskId t) const
{
    SRSIM_ASSERT(t >= 0 && t < numTasks(), "bad task id ", t);
    const NodeId n = nodes_[static_cast<std::size_t>(t)];
    if (n == kInvalidNode)
        fatal("task ", t, " has no node assigned");
    return n;
}

bool
TaskAllocation::complete() const
{
    return std::none_of(nodes_.begin(), nodes_.end(),
                        [](NodeId n) { return n == kInvalidNode; });
}

std::vector<TaskId>
TaskAllocation::tasksAt(NodeId n) const
{
    std::vector<TaskId> out;
    for (std::size_t t = 0; t < nodes_.size(); ++t)
        if (nodes_[t] == n)
            out.push_back(static_cast<TaskId>(t));
    return out;
}

bool
TaskAllocation::coLocated(const TaskFlowGraph &g, MessageId m) const
{
    const Message &msg = g.message(m);
    return nodeOf(msg.src) == nodeOf(msg.dst);
}

std::vector<MessageId>
TaskAllocation::networkMessages(const TaskFlowGraph &g) const
{
    std::vector<MessageId> out;
    for (const Message &m : g.messages())
        if (!coLocated(g, m.id))
            out.push_back(m.id);
    return out;
}

namespace alloc {

TaskAllocation
roundRobin(const TaskFlowGraph &g, const Topology &topo, int stride)
{
    SRSIM_ASSERT(stride >= 1, "stride must be positive");
    TaskAllocation a(g.numTasks(), topo.numNodes());
    const int n = topo.numNodes();
    for (TaskId t = 0; t < g.numTasks(); ++t)
        a.assign(t, (t * stride) % n);
    return a;
}

TaskAllocation
random(const TaskFlowGraph &g, const Topology &topo, Rng &rng)
{
    TaskAllocation a(g.numTasks(), topo.numNodes());
    std::vector<NodeId> pool(
        static_cast<std::size_t>(topo.numNodes()));
    std::iota(pool.begin(), pool.end(), 0);
    rng.shuffle(pool);
    for (TaskId t = 0; t < g.numTasks(); ++t) {
        a.assign(t, pool[static_cast<std::size_t>(t) % pool.size()]);
    }
    return a;
}

TaskAllocation
greedy(const TaskFlowGraph &g, const Topology &topo)
{
    TaskAllocation a(g.numTasks(), topo.numNodes());
    std::vector<bool> used(static_cast<std::size_t>(topo.numNodes()),
                           false);
    const bool exclusive = g.numTasks() <= topo.numNodes();
    std::vector<NodeId> placed(static_cast<std::size_t>(g.numTasks()),
                               kInvalidNode);

    for (TaskId t : g.topologicalOrder()) {
        NodeId best = kInvalidNode;
        double best_cost = std::numeric_limits<double>::infinity();
        for (NodeId n = 0; n < topo.numNodes(); ++n) {
            if (exclusive && used[static_cast<std::size_t>(n)])
                continue;
            double cost = 0.0;
            for (MessageId m : g.incoming(t)) {
                const Message &msg = g.message(m);
                const NodeId s =
                    placed[static_cast<std::size_t>(msg.src)];
                if (s != kInvalidNode)
                    cost += msg.bytes * topo.distance(s, n);
            }
            // Deterministic tie-break on the lowest node id.
            if (cost < best_cost) {
                best_cost = cost;
                best = n;
            }
        }
        SRSIM_ASSERT(best != kInvalidNode, "no node available");
        a.assign(t, best);
        used[static_cast<std::size_t>(best)] = true;
        placed[static_cast<std::size_t>(t)] = best;
    }
    return a;
}

} // namespace alloc

} // namespace srsim
