/**
 * @file
 * srsimc — the scheduled-routing command-line compiler.
 *
 * Subcommands:
 *
 *   srsimc info --tfg app.tfg
 *       Validate a TFG file; print tasks, messages, critical path.
 *
 *   srsimc compile --tfg app.tfg --topo torus:8,8 --period 100
 *           [--bandwidth 64] [--ap-speed 38.5]
 *           [--alloc greedy|random|rr:<stride>|coupled]
 *           [--feedback N] [--guard T] [--seed S]
 *           [--out omega.txt] [--svg omega.svg]
 *           [--node-schedules] [--faults SPEC]
 *       Compile a contention-free switching schedule; optionally
 *       write it to a file and print the per-node command lists.
 *       With --faults, degrade the fabric after the healthy compile
 *       (e.g. "link:3-7;derate:#12=0.5", see src/fault/fault.hh)
 *       and repair the schedule against the surviving topology,
 *       reporting per-message fates; --out then writes the repaired
 *       (v2) schedule.
 *
 *   srsimc simulate --tfg app.tfg --topo torus:8,8 --period 100
 *           [--bandwidth 64] [--ap-speed 38.5] [--alloc ...]
 *           [--vc N] [--invocations N]
 *       Simulate wormhole routing at the same operating point and
 *       report output (in)consistency.
 *
 * Exit status: 0 on success / feasible, 1 on infeasible or OI,
 * 2 on usage errors.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/coupled_allocation.hh"
#include "core/schedule_io.hh"
#include "core/schedule_render.hh"
#include "core/sr_compiler.hh"
#include "core/sr_executor.hh"
#include "cpsim/cp_simulator.hh"
#include "engine/context.hh"
#include "fault/fault.hh"
#include "fault/repair.hh"
#include "mapping/allocation.hh"
#include "metrics/metrics.hh"
#include "online/cache.hh"
#include "online/script.hh"
#include "online/service.hh"
#include "server/daemon.hh"
#include "server/protocol.hh"
#include "solver/lp.hh"
#include "tfg/tfg_io.hh"
#include "tfg/timing.hh"
#include "topology/factory.hh"
#include "trace/trace.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "wormhole/wormhole.hh"

namespace {

using namespace srsim;

struct Options
{
    std::string command;
    std::map<std::string, std::string> kv;

    bool has(const std::string &k) const { return kv.count(k); }

    std::string
    str(const std::string &k, const std::string &dflt = "") const
    {
        auto it = kv.find(k);
        return it == kv.end() ? dflt : it->second;
    }

    double
    num(const std::string &k, double dflt) const
    {
        auto it = kv.find(k);
        return it == kv.end() ? dflt : std::stod(it->second);
    }
};

int
usage()
{
    std::cerr <<
        "usage:\n"
        "  srsimc info --tfg FILE [--threads N]\n"
        "  srsimc compile --tfg FILE --topo SPEC --period US\n"
        "         [--bandwidth B] [--ap-speed S] [--alloc KIND]\n"
        "         [--feedback N] [--guard T] [--seed S]\n"
        "         [--out FILE] [--svg FILE] [--node-schedules]\n"
        "         [--faults SPEC]\n"
        "         [--trace FILE] [--trace-format chrome|csv]\n"
        "         [--metrics FILE] [--threads N]\n"
        "  srsimc simulate --tfg FILE --topo SPEC --period US\n"
        "         [--bandwidth B] [--ap-speed S] [--alloc KIND]\n"
        "         [--vc N] [--invocations N]\n"
        "         [--trace FILE] [--trace-format chrome|csv]\n"
        "         [--metrics FILE] [--threads N]\n"
        "  srsimc serve --tfg FILE --topo SPEC --period US\n"
        "         [--bandwidth B] [--ap-speed S] [--alloc KIND]\n"
        "         [--feedback N] [--guard T] [--seed S]\n"
        "         [--script FILE] [--cache-cap N] [--no-cache]\n"
        "         [--preload FILE] [--out FILE]\n"
        "         [--trace FILE] [--trace-format chrome|csv]\n"
        "         [--metrics FILE] [--threads N]\n"
        "  srsimc daemon [--script FILE | --stdin]\n"
        "         [--state-dir DIR] [--workers N] [--queue-cap K]\n"
        "         [--snapshot-every M] [--wal-sync-every W]\n"
        "         [--deadline-ms D] [--cache-cap N] [--out FILE]\n"
        "         [--trace FILE] [--trace-format chrome|csv]\n"
        "         [--metrics FILE] [--threads N]\n"
        "Flags also accept --key=value; unknown flags are rejected.\n"
        "--threads N caps engine parallelism; it beats the\n"
        "SRSIM_THREADS environment variable, which beats the\n"
        "hardware concurrency.\n"
        "topology SPECs: cube:6, ghc:4,4,4, torus:8,8, mesh:4,4\n"
        "alloc KINDs: greedy (default), random, rr:<stride>, "
        "coupled\n";
    return 2;
}

/**
 * Every command's accepted flags. A typo'd or misplaced flag is a
 * hard InvalidInput error, not a silent default: `--perido 100`
 * must not compile at period 0.
 */
const std::map<std::string, std::set<std::string>> &
knownFlags()
{
    static const std::set<std::string> common = {
        "tfg", "topo", "period", "bandwidth", "ap-speed", "alloc",
        "seed", "trace", "trace-format", "metrics", "threads"};
    static const std::map<std::string, std::set<std::string>> k =
        [] {
            std::map<std::string, std::set<std::string>> m;
            m["info"] = {"tfg", "bandwidth", "ap-speed",
                         "threads"};
            m["compile"] = common;
            m["compile"].insert({"feedback", "guard", "out", "svg",
                                 "node-schedules", "faults"});
            m["simulate"] = common;
            m["simulate"].insert({"vc", "invocations"});
            m["serve"] = common;
            m["serve"].insert({"feedback", "guard", "script",
                               "cache", "cache-cap", "no-cache",
                               "preload", "out"});
            m["daemon"] = {"script", "stdin", "state-dir",
                           "workers", "queue-cap",
                           "snapshot-every", "wal-sync-every",
                           "deadline-ms", "cache-cap", "out",
                           "trace", "trace-format", "metrics",
                           "threads"};
            return m;
        }();
    return k;
}

/**
 * Configure the process-default engine context from the command
 * line, exactly once, before any engine work runs. Precedence for
 * the thread budget: --threads N beats SRSIM_THREADS beats the
 * hardware concurrency (the pool's own default). SRSIM_SOLVER is
 * resolved here too (inside configureProcess), so a mid-run
 * environment change can never flip the solver kind.
 */
void
configureRootContext(const Options &opts)
{
    std::optional<std::size_t> threads;
    if (opts.has("threads")) {
        const double n = opts.num("threads", 0.0);
        if (n < 1.0)
            fatal("invalid input: --threads must be >= 1");
        threads = static_cast<std::size_t>(n);
    }
    engine::EngineContext::configureProcess(threads, std::nullopt);
}

/** Reject flags the command does not understand. */
void
validateFlags(const Options &opts)
{
    const auto it = knownFlags().find(opts.command);
    if (it == knownFlags().end())
        return; // unknown command: usage() reports it
    for (const auto &[k, v] : opts.kv) {
        if (it->second.count(k))
            continue;
        std::ostringstream oss;
        for (const std::string &f : it->second)
            oss << " --" << f;
        fatal("invalid input: unknown flag '--", k,
              "' for command '", opts.command,
              "' (known flags:", oss.str(), ")");
    }
}

/**
 * Switch tracing / metrics on when --trace / --metrics ask for an
 * output file. Must run before the instrumented work: the sites
 * check the enabled flags at entry.
 */
void
enableObservability(const Options &opts)
{
    if (opts.has("trace")) {
        trace::Tracer::instance().clear();
        trace::Tracer::setEnabled(true);
    }
    if (opts.has("metrics")) {
        metrics::Registry::global().clear();
        metrics::Registry::setEnabled(true);
    }
}

/** Export whatever enableObservability turned on. */
void
writeObservability(const Options &opts)
{
    if (opts.has("trace")) {
        trace::Tracer::setEnabled(false);
        const std::string path = opts.str("trace");
        std::ofstream out(path);
        if (!out)
            fatal("cannot write '", path, "'");
        const std::string fmt = opts.str("trace-format", "chrome");
        if (fmt == "chrome")
            trace::Tracer::instance().exportChrome(out);
        else if (fmt == "csv")
            trace::Tracer::instance().exportCsv(out);
        else
            fatal("unknown --trace-format '", fmt,
                  "' (expected chrome or csv)");
        std::cout << "trace (" << fmt << ") written to " << path
                  << "\n";
    }
    if (opts.has("metrics")) {
        metrics::Registry::setEnabled(false);
        const std::string path = opts.str("metrics");
        std::ofstream out(path);
        if (!out)
            fatal("cannot write '", path, "'");
        metrics::Registry::global().exportJson(out);
        out << "\n";
        std::cout << "metrics written to " << path << "\n";
    }
}

TaskFlowGraph
loadTfg(const Options &opts)
{
    const std::string path = opts.str("tfg");
    if (path.empty())
        fatal("--tfg FILE is required");
    std::ifstream in(path);
    if (!in)
        fatal("cannot open TFG file '", path, "'");
    return readTfg(in);
}

TaskAllocation
makeAllocation(const Options &opts, const TaskFlowGraph &g,
               const Topology &topo, const TimingModel &tm,
               Time period)
{
    const std::string kind = opts.str("alloc", "greedy");
    Rng rng(static_cast<std::uint64_t>(opts.num("seed", 1)));
    if (kind == "greedy")
        return alloc::greedy(g, topo);
    if (kind == "random")
        return alloc::random(g, topo, rng);
    if (kind.rfind("rr:", 0) == 0)
        return alloc::roundRobin(g, topo,
                                 std::stoi(kind.substr(3)));
    if (kind == "coupled") {
        const TaskAllocation seed = alloc::greedy(g, topo);
        CoupledAllocationResult coupled = coupleAllocationWithPaths(
            g, topo, tm, period, seed, rng);
        if (!coupled.ok)
            fatal("coupled allocation failed: ", coupled.error);
        return std::move(coupled.allocation);
    }
    fatal("unknown --alloc kind '", kind, "'");
}

int
cmdInfo(const Options &opts)
{
    const TaskFlowGraph g = loadTfg(opts);
    TimingModel tm;
    tm.apSpeed = opts.num("ap-speed", 1.0);
    tm.bandwidth = opts.num("bandwidth", 64.0);
    const InvocationTiming t = computeInvocationTiming(g, tm);

    std::cout << "tasks:      " << g.numTasks() << "\n"
              << "messages:   " << g.numMessages() << "\n"
              << "inputs:     " << g.inputTasks().size() << "\n"
              << "outputs:    " << g.outputTasks().size() << "\n"
              << "tau_c:      " << tm.tauC(g) << " us\n"
              << "tau_m:      " << tm.tauM(g) << " us\n"
              << "crit. path: " << t.criticalPath << " us\n"
              << "SR latency: " << t.windowLatency
              << " us (tau_c-window schedule)\n";
    return 0;
}

int
cmdCompile(const Options &opts)
{
    const TaskFlowGraph g = loadTfg(opts);
    const auto topo = makeTopology(opts.str("topo"));
    TimingModel tm;
    tm.apSpeed = opts.num("ap-speed", 1.0);
    tm.bandwidth = opts.num("bandwidth", 64.0);
    const Time period = opts.num("period", 0.0);
    if (period <= 0.0)
        fatal("--period US is required");

    const TaskAllocation alloc =
        makeAllocation(opts, g, *topo, tm, period);

    enableObservability(opts);

    SrCompilerConfig cfg;
    cfg.inputPeriod = period;
    cfg.feedbackRounds = static_cast<int>(opts.num("feedback", 0));
    cfg.scheduling.guardTime = opts.num("guard", 0.0);
    cfg.assign.seed =
        static_cast<std::uint64_t>(opts.num("seed", 12345));

    const SrCompileResult r =
        compileScheduledRouting(g, *topo, alloc, tm, cfg);
    if (!r.feasible) {
        std::cout << "infeasible at period " << period << " us: "
                  << r.detail << " (stage "
                  << srFailureStageName(r.stage) << ")\n";
        writeObservability(opts);
        return 1;
    }

    const SrExecutionResult ex =
        executeSchedule(g, alloc, tm, r.bounds, r.omega, 30);

    // Tracing a compile also runs the CP-level simulation so the
    // trace carries link-occupancy and crossbar-command tracks, not
    // just compiler phases.
    if (opts.has("trace") || opts.has("metrics"))
        simulateCps(g, *topo, alloc, tm, r.bounds, r.omega);

    std::cout << "feasible: " << r.bounds.messages.size()
              << " network messages, peak U = "
              << r.utilization.peak << ", " << r.numSubsets
              << " subsets, verified contention-free\n"
              << "throughput: constant, one output every "
              << ex.outputIntervals(5).mean() << " us\n"
              << "latency:    " << ex.latencies(5).mean()
              << " us\n";

    // Degraded-mode repair: strike the fabric, reschedule on the
    // survivors, report what each message's deadline suffered.
    const GlobalSchedule *outOmega = &r.omega;
    fault::RepairResult rep;
    if (opts.has("faults")) {
        const std::string spec = opts.str("faults");
        fault::applyFaultSpec(spec, *topo);
        fault::RepairOptions ropts;
        ropts.faultSpec = spec;
        rep = fault::repairSchedule(g, *topo, alloc, tm, cfg, r,
                                    ropts);
        std::cout << "faults: " << spec << " ("
                  << topo->numLiveLinks() << "/" << topo->numLinks()
                  << " links live)\n";
        if (!rep.feasible) {
            std::cout << "degraded-mode repair FAILED: "
                      << rep.detail << "\n";
            writeObservability(opts);
            return 1;
        }
        int nFate[4] = {0, 0, 0, 0};
        for (fault::MessageFate f : rep.fates)
            ++nFate[static_cast<int>(f)];
        std::cout << "repair: "
                  << (rep.usedIncremental ? "incremental"
                                          : "full recompile")
                  << ", subsets re-solved " << rep.subsetsResolved
                  << "/" << rep.subsetsTotal
                  << ", degraded period " << rep.degradedPeriod
                  << " us"
                  << (rep.omega.degradedFrom > 0.0 ? " (stretched)"
                                                   : "")
                  << "\n"
                  << "fates: " << nFate[0] << " survived, "
                  << nFate[1] << " rerouted, " << nFate[2]
                  << " degraded, " << nFate[3] << " shed\n";
        for (MessageId m = 0;
             m < static_cast<MessageId>(rep.fates.size()); ++m) {
            const fault::MessageFate f =
                rep.fates[static_cast<std::size_t>(m)];
            if (f != fault::MessageFate::Survived)
                std::cout << "  message '" << g.message(m).name
                          << "': " << fault::messageFateName(f)
                          << "\n";
        }
        outOmega = &rep.omega;
    }

    if (opts.has("out")) {
        std::ofstream out(opts.str("out"));
        if (!out)
            fatal("cannot write '", opts.str("out"), "'");
        writeSchedule(out, *outOmega);
        std::cout << "schedule written to " << opts.str("out")
                  << "\n";
    }
    if (opts.has("svg")) {
        std::ofstream out(opts.str("svg"));
        if (!out)
            fatal("cannot write '", opts.str("svg"), "'");
        renderScheduleSvg(out, g, *topo, r.bounds, r.omega);
        std::cout << "Gantt chart written to " << opts.str("svg")
                  << "\n";
    }
    if (opts.has("node-schedules")) {
        const auto nodes = deriveNodeSchedules(g, *topo, alloc,
                                               r.bounds, r.omega);
        for (const NodeSchedule &ns : nodes)
            if (!ns.commands.empty())
                printNodeSchedule(std::cout, ns, g);
    }
    writeObservability(opts);
    return 0;
}

int
cmdSimulate(const Options &opts)
{
    const TaskFlowGraph g = loadTfg(opts);
    const auto topo = makeTopology(opts.str("topo"));
    TimingModel tm;
    tm.apSpeed = opts.num("ap-speed", 1.0);
    tm.bandwidth = opts.num("bandwidth", 64.0);
    const Time period = opts.num("period", 0.0);
    if (period <= 0.0)
        fatal("--period US is required");

    const TaskAllocation alloc =
        makeAllocation(opts, g, *topo, tm, period);

    enableObservability(opts);

    WormholeSimulator sim(g, *topo, alloc, tm);
    WormholeConfig cfg;
    cfg.inputPeriod = period;
    cfg.invocations =
        static_cast<int>(opts.num("invocations", 60));
    cfg.virtualChannels = static_cast<int>(opts.num("vc", 1));
    const WormholeResult r = sim.run(cfg);
    writeObservability(opts);

    if (r.deadlocked) {
        std::cout << "wormhole routing DEADLOCKED: "
                  << r.deadlockInfo << "\n";
        return 1;
    }
    const SeriesStats s = r.outputIntervals(cfg.warmup);
    const SeriesStats lat = r.latencies(cfg.warmup);
    std::cout << "output interval min/avg/max: " << s.min() << "/"
              << s.mean() << "/" << s.max() << " us\n"
              << "latency min/avg/max:         " << lat.min()
              << "/" << lat.mean() << "/" << lat.max() << " us\n";
    if (r.outputInconsistent(cfg.warmup)) {
        std::cout << "verdict: OUTPUT INCONSISTENCY\n";
        return 1;
    }
    std::cout << "verdict: consistent\n";
    return 0;
}

/** One-line description of a request for the per-request JSON. */
std::string
requestArg(const online::Request &r)
{
    using online::RequestKind;
    switch (r.kind) {
      case RequestKind::AdmitMessage: {
          std::string s;
          for (const online::AdmitSpec &a : r.admits) {
              if (!s.empty())
                  s += ",";
              s += a.name;
          }
          return s;
      }
      case RequestKind::RemoveMessage: return r.name;
      case RequestKind::UpdatePeriod: {
          std::ostringstream oss;
          oss << r.period;
          return oss.str();
      }
      case RequestKind::InjectFault: return r.faultSpec;
    }
    return {};
}

void
writeRequestJson(JsonWriter &w, int index, const std::string &kind,
                 const std::string &arg,
                 const online::RequestResult &res)
{
    w.beginObject();
    w.kv("index", index);
    w.kv("kind", kind);
    if (!arg.empty())
        w.kv("arg", arg);
    w.kv("accepted", res.accepted);
    w.kv("reason", online::rejectReasonName(res.reason));
    if (!res.detail.empty())
        w.kv("detail", res.detail);
    w.kv("subsetsTotal",
         static_cast<std::uint64_t>(res.subsetsTotal));
    w.kv("subsetsResolved",
         static_cast<std::uint64_t>(res.subsetsResolved));
    w.kv("subsetsCopied",
         static_cast<std::uint64_t>(res.subsetsCopied));
    w.kv("usedCache", res.usedCache);
    w.kv("usedIncremental", res.usedIncremental);
    w.kv("usedFullCompile", res.usedFullCompile);
    w.kv("latencyMs", res.latencyMs);
    w.kv("period", res.period);
    w.kv("peakU", res.peakUtilization);
    if (res.requiredPeriod > 0.0)
        w.kv("requiredPeriod", res.requiredPeriod);
    w.endObject();
}

double
percentileOf(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const double idx =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi =
        std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

int
cmdServe(const Options &opts)
{
    const TaskFlowGraph g = loadTfg(opts);
    auto topo = makeTopology(opts.str("topo"));
    TimingModel tm;
    tm.apSpeed = opts.num("ap-speed", 1.0);
    tm.bandwidth = opts.num("bandwidth", 64.0);
    const Time period = opts.num("period", 0.0);
    if (period <= 0.0)
        fatal("--period US is required");

    const TaskAllocation alloc =
        makeAllocation(opts, g, *topo, tm, period);

    // --preload exercises the hardened schedule reader: a corrupt
    // or truncated file is reported and skipped, never an abort.
    if (opts.has("preload")) {
        const std::string path = opts.str("preload");
        std::ifstream in(path);
        if (!in)
            fatal("cannot open schedule file '", path, "'");
        const ScheduleReadResult pre = tryReadSchedule(in, *topo);
        if (pre.ok)
            std::cerr << "preload: schedule '" << path
                      << "' ok (period " << pre.omega.period
                      << " us, " << pre.omega.segments.size()
                      << " messages)\n";
        else
            std::cerr << "preload: rejected '" << path
                      << "': " << pre.error << "\n";
    }

    enableObservability(opts);

    online::OnlineSchedulerConfig cfg;
    cfg.compiler.inputPeriod = period;
    cfg.compiler.feedbackRounds =
        static_cast<int>(opts.num("feedback", 0));
    cfg.compiler.scheduling.guardTime = opts.num("guard", 0.0);
    cfg.compiler.assign.seed =
        static_cast<std::uint64_t>(opts.num("seed", 12345));
    // --cache-cap is the canonical spelling; --cache stays as an
    // alias for older scripts.
    cfg.cacheCapacity =
        opts.has("no-cache")
            ? 0
            : static_cast<std::size_t>(opts.num(
                  "cache-cap", opts.num("cache", 64)));

    // Parse the whole script up front so a malformed line is a
    // usage error before any request mutates the service.
    online::ScriptParseResult script;
    if (opts.has("script")) {
        const std::string path = opts.str("script");
        std::ifstream in(path);
        if (!in)
            fatal("cannot open script file '", path, "'");
        script = online::parseRequestScript(in);
    } else {
        script = online::parseRequestScript(std::cin);
    }
    if (!script.ok)
        fatal("invalid input: script line ", script.errorLine,
              ": ", script.error);

    std::ofstream outFile;
    std::ostream *os = &std::cout;
    if (opts.has("out")) {
        outFile.open(opts.str("out"));
        if (!outFile)
            fatal("cannot write '", opts.str("out"), "'");
        os = &outFile;
    }

    online::OnlineScheduler svc(g, std::move(topo), alloc, tm,
                                cfg);

    struct Tally
    {
        int admitted = 0, removed = 0, periodUpdates = 0,
            faults = 0, rejected = 0;
        std::uint64_t resolved = 0, copied = 0;
        std::vector<double> admitLatencies;
    } tally;

    const online::RequestResult first = svc.start();
    {
        JsonWriter w(*os);
        writeRequestJson(w, 0, "start", "", first);
        *os << "\n";
    }
    if (!first.accepted) {
        writeObservability(opts);
        std::cerr << "initial compile rejected ("
                  << online::rejectReasonName(first.reason)
                  << "): " << first.detail << "\n";
        return 1;
    }

    int index = 0;
    for (const online::Request &r : script.requests) {
        ++index;
        const online::RequestResult res = svc.process(r);
        {
            JsonWriter w(*os);
            writeRequestJson(w, index,
                             online::requestKindName(r.kind),
                             requestArg(r), res);
            *os << "\n";
        }
        if (!res.accepted) {
            ++tally.rejected;
        } else {
            switch (r.kind) {
              case online::RequestKind::AdmitMessage:
                  ++tally.admitted;
                  break;
              case online::RequestKind::RemoveMessage:
                  ++tally.removed;
                  break;
              case online::RequestKind::UpdatePeriod:
                  ++tally.periodUpdates;
                  break;
              case online::RequestKind::InjectFault:
                  ++tally.faults;
                  break;
            }
        }
        tally.resolved += res.subsetsResolved;
        tally.copied += res.subsetsCopied;
        if (r.kind == online::RequestKind::AdmitMessage)
            tally.admitLatencies.push_back(res.latencyMs);
    }

    const auto st = svc.published();
    const online::ScheduleCache &cache = svc.cache();
    const std::uint64_t lookups = cache.hits() + cache.misses();
    {
        JsonWriter w(*os);
        w.beginObject();
        w.key("summary").beginObject();
        w.kv("requests",
             static_cast<std::uint64_t>(script.requests.size()));
        w.kv("admitted", tally.admitted);
        w.kv("removed", tally.removed);
        w.kv("periodUpdates", tally.periodUpdates);
        w.kv("faultsInjected", tally.faults);
        w.kv("rejected", tally.rejected);
        w.kv("subsetsResolved", tally.resolved);
        w.kv("subsetsCopied", tally.copied);
        w.key("cache").beginObject();
        w.kv("hits", cache.hits());
        w.kv("misses", cache.misses());
        w.kv("evictions", cache.evictions());
        w.kv("entries", static_cast<std::uint64_t>(cache.size()));
        w.kv("bytes", cache.bytes());
        w.kv("hitRate",
             lookups == 0
                 ? 0.0
                 : static_cast<double>(cache.hits()) /
                       static_cast<double>(lookups));
        w.endObject();
        {
            const lp::SolverStats ss = lp::solverStats();
            w.key("solver").beginObject();
            w.kv("solves", ss.solves);
            w.kv("pivots", ss.pivots);
            w.key("warmstart").beginObject();
            w.kv("attempts", ss.warmAttempts);
            w.kv("hits", ss.warmHits);
            w.kv("misses", ss.warmMisses);
            w.endObject();
            w.endObject();
        }
        // An empty script (or one with no admits) has no latency
        // distribution; emit the count and no fabricated zeros.
        w.key("admitLatencyMs").beginObject();
        w.kv("count", static_cast<std::uint64_t>(
                          tally.admitLatencies.size()));
        if (!tally.admitLatencies.empty()) {
            w.kv("p50", percentileOf(tally.admitLatencies, 50.0));
            w.kv("p95", percentileOf(tally.admitLatencies, 95.0));
            w.kv("p99", percentileOf(tally.admitLatencies, 99.0));
        }
        w.endObject();
        w.kv("finalPeriod", st->omega.period);
        w.kv("finalVersion", st->version);
        w.kv("finalMessages",
             static_cast<std::uint64_t>(
                 st->bounds.messages.size()));
        w.kv("finalPeakU", st->peakUtilization);
        w.endObject();
        w.endObject();
        *os << "\n";
    }

    writeObservability(opts);
    return 0;
}

void
writeDaemonResponseJson(JsonWriter &w,
                        const server::DaemonResponse &resp)
{
    w.beginObject();
    w.kv("id", resp.id);
    w.kv("session", resp.session);
    w.kv("kind", resp.kind);
    w.kv("outcome", server::daemonOutcomeName(resp.outcome));
    if (!resp.detail.empty())
        w.kv("detail", resp.detail);
    w.kv("queueMs", resp.queueMs);
    // close has no scheduler verdict: nothing is compiled.
    if (resp.outcome == server::DaemonOutcome::Ok &&
        resp.kind != "close") {
        w.kv("accepted", resp.result.accepted);
        w.kv("reason",
             online::rejectReasonName(resp.result.reason));
        if (!resp.result.detail.empty())
            w.kv("resultDetail", resp.result.detail);
        w.kv("latencyMs", resp.result.latencyMs);
        w.kv("period", resp.result.period);
        w.kv("peakU", resp.result.peakUtilization);
    }
    w.endObject();
}

int
cmdDaemon(const Options &opts)
{
    // Parse the whole script before constructing the daemon so a
    // malformed line is a usage error, not a half-applied run.
    server::DaemonScriptParseResult script;
    if (opts.has("script")) {
        const std::string path = opts.str("script");
        std::ifstream in(path);
        if (!in)
            fatal("cannot open script file '", path, "'");
        script = server::parseDaemonScript(in);
    } else {
        script = server::parseDaemonScript(std::cin);
    }
    if (!script.ok)
        fatal("invalid input: script line ", script.errorLine,
              ": ", script.error);

    std::ofstream outFile;
    std::ostream *os = &std::cout;
    if (opts.has("out")) {
        outFile.open(opts.str("out"));
        if (!outFile)
            fatal("cannot write '", opts.str("out"), "'");
        os = &outFile;
    }

    enableObservability(opts);

    server::DaemonConfig cfg;
    cfg.workers =
        static_cast<std::size_t>(opts.num("workers", 1));
    cfg.queueCap =
        static_cast<std::size_t>(opts.num("queue-cap", 64));
    cfg.stateDir = opts.str("state-dir");
    cfg.snapshotEvery =
        static_cast<std::size_t>(opts.num("snapshot-every", 0));
    cfg.walSyncEvery =
        static_cast<std::size_t>(opts.num("wal-sync-every", 1));
    cfg.deadlineMs = opts.num("deadline-ms", 0.0);
    cfg.cacheCapacity =
        static_cast<std::size_t>(opts.num("cache-cap", 64));

    server::SchedulingDaemon daemon(cfg);

    const server::RecoveryResult &rec = daemon.recovery();
    if (rec.attempted) {
        JsonWriter w(*os);
        w.beginObject();
        w.key("recovery").beginObject();
        w.kv("walRecords", rec.walRecords);
        w.kv("walTornTail", rec.walTornTail);
        if (!rec.snapshotPath.empty()) {
            w.kv("snapshot", rec.snapshotPath);
            w.kv("snapshotSeq", rec.snapshotSeq);
        }
        w.kv("replayed", rec.replayed);
        w.kv("replayRejected", rec.replayRejected);
        w.kv("rejectedSnapshots",
             static_cast<std::uint64_t>(
                 rec.rejectedSnapshots.size()));
        w.kv("sessions",
             static_cast<std::uint64_t>(rec.sessionsRestored));
        w.endObject();
        w.endObject();
        *os << "\n";
    }

    const std::vector<server::DaemonResponse> responses =
        daemon.run(script.ops);
    std::uint64_t accepted = 0, rejected = 0, overloaded = 0,
                  expired = 0;
    std::vector<double> queueWaits;
    for (const server::DaemonResponse &resp : responses) {
        JsonWriter w(*os);
        writeDaemonResponseJson(w, resp);
        *os << "\n";
        switch (resp.outcome) {
          case server::DaemonOutcome::Ok:
              if (resp.result.accepted)
                  ++accepted;
              else
                  ++rejected;
              break;
          case server::DaemonOutcome::Overloaded:
              ++overloaded;
              break;
          case server::DaemonOutcome::DeadlineExpired:
              ++expired;
              break;
          default:
              ++rejected;
              break;
        }
        queueWaits.push_back(resp.queueMs);
    }

    daemon.shutdown();

    const online::ScheduleCache &cache = daemon.cache();
    {
        JsonWriter w(*os);
        w.beginObject();
        w.key("summary").beginObject();
        w.kv("requests", static_cast<std::uint64_t>(
                             responses.size()));
        w.kv("accepted", accepted);
        w.kv("rejected", rejected);
        w.kv("overloaded", overloaded);
        w.kv("deadlineExpired", expired);
        w.kv("sessions", static_cast<std::uint64_t>(
                             daemon.sessionNames().size()));
        w.kv("walRecords", daemon.walRecords());
        w.kv("walFsyncs", daemon.walFsyncs());
        w.kv("snapshots", daemon.snapshotsWritten());
        w.key("cache").beginObject();
        w.kv("hits", cache.hits());
        w.kv("misses", cache.misses());
        w.kv("evictions", cache.evictions());
        w.kv("entries",
             static_cast<std::uint64_t>(cache.size()));
        w.kv("bytes", cache.bytes());
        w.endObject();
        {
            const lp::SolverStats ss = lp::solverStats();
            w.key("solver").beginObject();
            w.kv("solves", ss.solves);
            w.kv("pivots", ss.pivots);
            w.key("warmstart").beginObject();
            w.kv("attempts", ss.warmAttempts);
            w.kv("hits", ss.warmHits);
            w.kv("misses", ss.warmMisses);
            w.endObject();
            w.endObject();
        }
        // Per-session metrics from each session's child registry.
        // Purely additive: every aggregate field above is computed
        // exactly as before, so pre-existing consumers see
        // byte-identical values.
        w.key("sessions").beginObject();
        for (const auto &[name, reg] : daemon.sessionMetrics()) {
            w.key(name).beginObject();
            w.key("metrics").beginObject();
            for (const auto &[cname, val] :
                 reg->counterSnapshot())
                w.kv(cname, val);
            w.endObject();
            w.endObject();
        }
        w.endObject();
        w.key("queueMs").beginObject();
        w.kv("count", static_cast<std::uint64_t>(
                          queueWaits.size()));
        if (!queueWaits.empty()) {
            w.kv("p50", percentileOf(queueWaits, 50.0));
            w.kv("p95", percentileOf(queueWaits, 95.0));
            w.kv("p99", percentileOf(queueWaits, 99.0));
        }
        w.endObject();
        w.endObject();
        w.endObject();
        *os << "\n";
    }

    writeObservability(opts);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();

    Options opts;
    opts.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            return usage();
        arg = arg.substr(2);
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            opts.kv[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (arg == "node-schedules" || arg == "no-cache" ||
                   arg == "stdin") {
            opts.kv[arg] = "1";
        } else if (i + 1 < argc) {
            opts.kv[arg] = argv[++i];
        } else {
            return usage();
        }
    }

    try {
        validateFlags(opts);
        configureRootContext(opts);
        if (opts.command == "info")
            return cmdInfo(opts);
        if (opts.command == "compile")
            return cmdCompile(opts);
        if (opts.command == "simulate")
            return cmdSimulate(opts);
        if (opts.command == "serve")
            return cmdServe(opts);
        if (opts.command == "daemon")
            return cmdDaemon(opts);
        return usage();
    } catch (const srsim::FatalError &) {
        return 2;
    }
}
