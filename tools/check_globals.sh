#!/bin/sh
# Ratchet against re-introducing process-global service access.
#
# The engine-context refactor moved every compile/simulate/serve
# path off the ambient singletons: code receives its metrics
# registry, tracer, thread pool, and solver configuration through an
# explicit EngineContext. This check keeps it that way — it fails on
# any NEW use of
#
#   Registry::global()     (metrics)
#   Tracer::instance()     (tracing)
#   std::getenv            (environment reads)
#
# in product code (src/) outside the sanctioned zones:
#
#   src/util/                the process-singleton implementations
#                            themselves (thread pool, env helpers)
#   src/metrics/metrics.cc   Registry::global()'s own definition
#   src/trace/trace.cc       Tracer::instance()'s own definition
#   src/engine/context.cc    the default-context escape hatch
#
# tools/ (the CLI entry points) is outside the scan: that is the one
# layer allowed to resolve the environment and process singletons —
# exactly once, into the root context. Tests and benches are also
# out of scope; the suites that exercise the singletons (test_trace,
# test_metrics) must keep reaching them directly. Run from the
# repository root; exits non-zero with one line per violation.

set -u

status=0
out=$(mktemp)
trap 'rm -f "$out"' EXIT

scan() {
    pattern="$1"
    label="$2"
    # Comment lines (leading // or *) may cite the globals when
    # documenting the refactor; only code lines count.
    grep -rn "$pattern" src 2>/dev/null |
        grep -v '^src/util/' |
        grep -v '^src/metrics/metrics\.cc:' |
        grep -v '^src/trace/trace\.cc:' |
        grep -v '^src/engine/context\.cc:' |
        grep -v -E '^[^:]+:[0-9]+:[[:space:]]*(//|\*)' >"$out" || true
    if [ -s "$out" ]; then
        echo "check_globals: new $label use outside sanctioned zones:"
        sed 's/^/  /' "$out"
        status=1
    fi
}

scan 'Registry::global()' 'Registry::global()'
scan 'Tracer::instance()' 'Tracer::instance()'
scan 'std::getenv' 'std::getenv'

if [ "$status" -ne 0 ]; then
    echo "check_globals: FAILED — route these through an" \
         "engine::EngineContext (see DESIGN.md §14)." >&2
else
    echo "check_globals: ok"
fi
exit "$status"
