/**
 * @file
 * regen_golden — refresh the golden conformance corpus.
 *
 *   regen_golden [DIR]
 *
 * Recompiles every case of the conformance table (see
 * tests/golden_cases.hh) and rewrites DIR/<name>.sched (default:
 * tests/golden relative to the current directory). Run this ONLY
 * after an intentional change to compiler or repair output, then
 * review the diff like any other source change — the checked-in
 * bytes are the conformance contract that `ctest -L golden`
 * enforces.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "golden_cases.hh"
#include "golden_churn.hh"

namespace {

bool
writeCase(const std::string &dir, const std::string &name,
          const std::string &text)
{
    const std::string path = dir + "/" + name + ".sched";
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write '" << path << "'\n";
        return false;
    }
    out << text;
    std::cout << path << ": " << text.size() << " bytes\n";
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : "tests/golden";
    try {
        for (const auto &gc : srsim::golden::goldenCases())
            if (!writeCase(dir, gc.name,
                           srsim::golden::compileGoldenCase(gc)))
                return 1;
        for (const auto &cc : srsim::golden::churnCases())
            if (!writeCase(
                    dir, cc.name,
                    srsim::golden::runChurnCase(cc).scheduleText))
                return 1;
    } catch (const srsim::FatalError &e) {
        std::cerr << "regen_golden: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
