/**
 * @file
 * regen_golden — refresh the golden conformance corpus.
 *
 *   regen_golden [DIR]
 *
 * Recompiles every case of the conformance table (see
 * tests/golden_cases.hh) and rewrites DIR/<name>.sched (default:
 * tests/golden relative to the current directory). Run this ONLY
 * after an intentional change to compiler or repair output, then
 * review the diff like any other source change — the checked-in
 * bytes are the conformance contract that `ctest -L golden`
 * enforces.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "golden_cases.hh"

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : "tests/golden";
    try {
        for (const auto &gc : srsim::golden::goldenCases()) {
            const std::string text =
                srsim::golden::compileGoldenCase(gc);
            const std::string path =
                dir + "/" + gc.name + ".sched";
            std::ofstream out(path);
            if (!out) {
                std::cerr << "cannot write '" << path << "'\n";
                return 1;
            }
            out << text;
            std::cout << path << ": " << text.size()
                      << " bytes\n";
        }
    } catch (const srsim::FatalError &e) {
        std::cerr << "regen_golden: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
