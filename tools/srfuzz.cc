/**
 * @file
 * srfuzz — the deterministic differential fuzzer for the SR
 * compiler (compile → verify → simulate cross-check).
 *
 * Modes:
 *
 *   srfuzz --seeds N [--start S]
 *       Generate and run N seed-derived cases. Every failure is
 *       auto-shrunk and dumped as a replayable .srfuzz file.
 *
 *   srfuzz --minutes M [--start S]
 *       Time-boxed smoke run: consume seeds from S until M minutes
 *       of wall clock have elapsed.
 *
 *   srfuzz --replay FILE [--shrink]
 *       Re-run one saved case; optionally shrink it further and
 *       write FILE.min.
 *
 *   srfuzz --corpus DIR
 *       Replay every *.srfuzz under DIR (the regression corpus).
 *
 * Common flags: [--out DIR] (failure dump directory, default '.'),
 * [--invocations N], [--max-shrink-evals N], [--no-shrink].
 *
 * [--solver-diff] additionally runs every LP solve through the
 * dense tableau, the sparse revised solver (cold), and — when a
 * warm basis is offered — the warm-started revised solver, and
 * cross-checks status agreement and objective equality to 1e-6
 * relative. Any disagreement is a failure.
 *
 * Exit status: 0 when every case behaved (no aborts, no oracle
 * divergences, no solver disagreements), 1 when any failure was
 * found, 2 on usage errors.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/differential.hh"
#include "fuzz/fuzz_case.hh"
#include "fuzz/generator.hh"
#include "fuzz/shrink.hh"
#include "solver/lp.hh"
#include "util/logging.hh"

namespace {

using namespace srsim;

struct Options
{
    std::map<std::string, std::string> kv;

    bool has(const std::string &k) const { return kv.count(k); }

    std::string
    str(const std::string &k, const std::string &dflt = "") const
    {
        auto it = kv.find(k);
        return it == kv.end() ? dflt : it->second;
    }

    double
    num(const std::string &k, double dflt) const
    {
        auto it = kv.find(k);
        return it == kv.end() ? dflt : std::stod(it->second);
    }
};

int
usage()
{
    std::cerr <<
        "usage:\n"
        "  srfuzz --seeds N [--start S] [--out DIR]\n"
        "  srfuzz --minutes M [--start S] [--out DIR]\n"
        "  srfuzz --replay FILE [--shrink]\n"
        "  srfuzz --emit-seed N            (print a case)\n"
        "  srfuzz --corpus DIR\n"
        "common: [--invocations N] [--max-shrink-evals N]\n"
        "        [--no-shrink] [--quiet] [--multi]\n"
        "        [--solver-diff]\n"
        "--solver-diff cross-checks every LP solve across the\n"
        "dense, sparse-cold, and warm-started solvers (status +\n"
        "objective to 1e-6); any disagreement fails the run.\n"
        "--multi draws multi-session daemon cases (crash-recovery\n"
        "oracle) instead of batch/churn cases.\n"
        "Flags also accept --key=value.\n";
    return 2;
}

/** Tally of verdicts over a run. */
struct Tally
{
    std::size_t feasible = 0, infeasible = 0, invalid = 0,
                failures = 0;

    void
    add(fuzz::Verdict v)
    {
        switch (v) {
          case fuzz::Verdict::Feasible: ++feasible; break;
          case fuzz::Verdict::Infeasible: ++infeasible; break;
          case fuzz::Verdict::InvalidCase: ++invalid; break;
          case fuzz::Verdict::Failure: ++failures; break;
        }
    }

    std::size_t
    total() const
    {
        return feasible + infeasible + invalid + failures;
    }
};

std::ostream &
operator<<(std::ostream &os, const Tally &t)
{
    return os << t.total() << " cases: " << t.feasible
              << " feasible, " << t.infeasible << " infeasible, "
              << t.invalid << " invalid-case, " << t.failures
              << " FAILURES";
}

/** Shrink (unless disabled) and dump a failing case. */
void
dumpFailure(const fuzz::FuzzCase &c, const fuzz::RunResult &r,
            const Options &opts)
{
    const fuzz::RunOptions run_opts{
        static_cast<int>(opts.num("invocations", 30)), 5, 1e-6};

    fuzz::FuzzCase final = c;
    if (!opts.has("no-shrink")) {
        fuzz::ShrinkStats st;
        final = fuzz::shrinkCase(
            c,
            [&](const fuzz::FuzzCase &cand) {
                return fuzz::runCase(cand, run_opts).failed();
            },
            static_cast<std::size_t>(
                opts.num("max-shrink-evals", 400)),
            &st);
        std::cerr << "  shrunk: -" << st.messagesRemoved
                  << " messages, -" << st.tasksRemoved
                  << " tasks, " << st.knobsSimplified
                  << " knobs simplified (" << st.evaluations
                  << " evals)\n";
    }

    const std::filesystem::path dir(opts.str("out", "."));
    std::filesystem::create_directories(dir);
    std::ostringstream name;
    name << "seed" << c.seed << ".srfuzz";
    const std::filesystem::path path = dir / name.str();
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '", path.string(), "'");
    out << "# " << r.report << "\n";
    fuzz::writeFuzzCase(out, final);
    std::cerr << "  dumped to " << path.string() << "\n";
}

/** Run one generated seed; returns its verdict. */
fuzz::Verdict
runSeed(std::uint64_t seed, const Options &opts, const bool quiet)
{
    const fuzz::RunOptions run_opts{
        static_cast<int>(opts.num("invocations", 30)), 5, 1e-6};
    const fuzz::FuzzCase c = opts.has("multi")
                                 ? fuzz::generateMultiCase(seed)
                                 : fuzz::generateCase(seed);
    const fuzz::RunResult r = fuzz::runCase(c, run_opts);
    if (r.failed()) {
        std::cerr << "seed " << seed << " FAILURE: " << r.report
                  << "\n";
        dumpFailure(c, r, opts);
    } else if (!quiet) {
        std::cout << "seed " << seed << ": "
                  << fuzz::verdictName(r.verdict) << "\n";
    }
    return r.verdict;
}

int
cmdSeeds(const Options &opts)
{
    const auto start =
        static_cast<std::uint64_t>(opts.num("start", 0));
    const auto n = static_cast<std::uint64_t>(opts.num("seeds", 0));
    const bool quiet = opts.has("quiet");

    Tally tally;
    for (std::uint64_t s = start; s < start + n; ++s)
        tally.add(runSeed(s, opts, quiet));
    std::cout << "srfuzz seeds " << start << ".."
              << (start + n - 1) << ": " << tally << "\n";
    return tally.failures ? 1 : 0;
}

int
cmdMinutes(const Options &opts)
{
    const auto start =
        static_cast<std::uint64_t>(opts.num("start", 0));
    const double minutes = opts.num("minutes", 1.0);
    const bool quiet = opts.has("quiet");
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::ratio<60>>(minutes));

    Tally tally;
    std::uint64_t s = start;
    while (std::chrono::steady_clock::now() < deadline)
        tally.add(runSeed(s++, opts, quiet));
    std::cout << "srfuzz minutes " << minutes << " (seeds " << start
              << ".." << (s - 1) << "): " << tally << "\n";
    return tally.failures ? 1 : 0;
}

int
replayOne(const std::filesystem::path &path, const Options &opts,
          Tally &tally)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '", path.string(), "'");
    const fuzz::FuzzCase c = fuzz::readFuzzCase(in);
    const fuzz::RunOptions run_opts{
        static_cast<int>(opts.num("invocations", 30)), 5, 1e-6};
    const fuzz::RunResult r = fuzz::runCase(c, run_opts);
    tally.add(r.verdict);
    std::cout << path.string() << ": "
              << fuzz::verdictName(r.verdict)
              << (r.report.empty() ? "" : " — " + r.report) << "\n";

    if (r.failed() && opts.has("shrink")) {
        const fuzz::FuzzCase min = fuzz::shrinkCase(
            c,
            [&](const fuzz::FuzzCase &cand) {
                return fuzz::runCase(cand, run_opts).failed();
            },
            static_cast<std::size_t>(
                opts.num("max-shrink-evals", 400)));
        const std::filesystem::path out_path =
            path.string() + ".min";
        std::ofstream out(out_path);
        if (!out)
            fatal("cannot write '", out_path.string(), "'");
        out << "# " << r.report << "\n";
        fuzz::writeFuzzCase(out, min);
        std::cout << "shrunk case written to " << out_path.string()
                  << "\n";
    }
    return r.failed() ? 1 : 0;
}

int
cmdReplay(const Options &opts)
{
    Tally tally;
    return replayOne(opts.str("replay"), opts, tally);
}

int
cmdEmit(const Options &opts)
{
    // Corpus curation: print the generated case for a seed so it
    // can be reviewed and checked in under tests/corpus/.
    const auto seed =
        static_cast<std::uint64_t>(opts.num("emit-seed", 0));
    fuzz::writeFuzzCase(std::cout,
                        opts.has("multi")
                            ? fuzz::generateMultiCase(seed)
                            : fuzz::generateCase(seed));
    return 0;
}

int
cmdCorpus(const Options &opts)
{
    const std::filesystem::path dir(opts.str("corpus"));
    if (!std::filesystem::is_directory(dir))
        fatal("'", dir.string(), "' is not a directory");

    std::vector<std::filesystem::path> files;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().extension() == ".srfuzz")
            files.push_back(e.path());
    std::sort(files.begin(), files.end());
    if (files.empty())
        fatal("no .srfuzz files under '", dir.string(), "'");

    Tally tally;
    for (const auto &f : files)
        replayOne(f, opts, tally);
    std::cout << "srfuzz corpus " << dir.string() << ": " << tally
              << "\n";
    return tally.failures ? 1 : 0;
}

/**
 * Report the cross-solver tally and escalate the exit status when
 * any solve disagreed (--solver-diff runs only).
 */
int
finishSolverDiff(int rc)
{
    const srsim::lp::SolverDiffStats ds =
        srsim::lp::solverDiffStats();
    std::cout << "srfuzz solver-diff: " << ds.solves
              << " solves cross-checked, " << ds.disagreements
              << " disagreements\n";
    if (ds.disagreements != 0) {
        if (!ds.firstReport.empty())
            std::cerr << "first disagreement: " << ds.firstReport
                      << "\n";
        return rc == 0 ? 1 : rc;
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            return usage();
        arg = arg.substr(2);
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            opts.kv[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (arg == "no-shrink" || arg == "quiet" ||
                   arg == "shrink" || arg == "multi" ||
                   arg == "solver-diff") {
            opts.kv[arg] = "1";
        } else if (i + 1 < argc) {
            opts.kv[arg] = argv[++i];
        } else {
            return usage();
        }
    }

    const bool solver_diff = opts.has("solver-diff");
    if (solver_diff)
        srsim::lp::setSolverDiff(true);

    try {
        int rc;
        if (opts.has("replay"))
            rc = cmdReplay(opts);
        else if (opts.has("emit-seed"))
            rc = cmdEmit(opts);
        else if (opts.has("corpus"))
            rc = cmdCorpus(opts);
        else if (opts.has("minutes"))
            rc = cmdMinutes(opts);
        else if (opts.has("seeds"))
            rc = cmdSeeds(opts);
        else
            return usage();
        return solver_diff ? finishSolverDiff(rc) : rc;
    } catch (const srsim::FatalError &) {
        return 2;
    }
}
